"""Basic-block superinstruction compiler — the ``blocks`` engine.

The closure interpreter in :mod:`repro.machine.simulator` pays one
Python call (plus a leader-instrumentation call and up to three
``array.append`` calls) per executed instruction, and a list subscript
for every register access.  This module compiles basic blocks — the
leader partition from :func:`repro.cfg.blocks.leader_addresses`, the
same one the profiler counts — into ``exec``-compiled Python
superinstruction functions:

* operand constants (register numbers, immediates, branch target
  indices, the block-entry budget) are folded into the source text, so
  a block executes as straight-line bytecode with no dispatch between
  its instructions;
* register state lives in *function locals* (``v8`` for ``$t0``, …):
  upward-exposed registers load once at entry, every access in the body
  is a ``LOAD_FAST``/``STORE_FAST``, and dirty registers write back to
  the shared register file only at function exits, before syscalls, and
  on error paths — a loop iterating inside one function touches the
  register list not at all;
* reads of ``$zero`` fold to ``0`` and writes to it are dropped, which
  also erases the closure engine's ``_guard_zero`` wrappers;
* blocks *chain*: a function continues straight through fall-throughs,
  ``j``/``jal``, and the not-taken side of conditional branches into
  the successor block's code — including that block's entry-count
  preamble, so profiling is unchanged — and a backedge to the
  function's own root block compiles to ``continue`` inside a
  ``while True:``, so a hot loop runs whole iterations without
  returning to the dispatch loop;
* memory accesses are batched: effective addresses are computed into
  locals and appended to the three :class:`MemoryTrace` columns in bulk
  at chain exits (per flushed run, the static pc/kind columns are
  prebuilt ``array`` constants — two C-level copies — and only the
  address tuple is built per execution);
* each function returns the instruction index execution continues at,
  so the simulator's unrolled ``index = ops[index]()`` dispatch loop is
  shared verbatim between both engines.

Bit-identical semantics is the contract (property-tested in
``tests/test_blocks_engine.py``): every emitted expression replicates
the corresponding closure exactly — including the float-division
``div``/``rem`` idiom, trace-append ordering around exceptions, and the
closure engine's error messages.  Three details matter for equivalence:

* pending trace appends are flushed, and dirty registers written back,
  *before* anything that can escape the function — ``syscall`` can
  exit, ``jr``/``jalr`` can fault, and a chained block's budget check
  can trip, in which case flush and write-back run on the error path
  before the raise — so an interrupted run leaves exactly the machine
  state the closure engine would;
* every exit from a function flushes the accesses pending on *that*
  path (the paths are mutually exclusive, so each dynamic access is
  appended exactly once, in program order) and writes back exactly the
  registers assigned on that path;
* a computed jump (``jr``/``jalr``) may land in the *middle* of a fused
  block.  Every non-leader index therefore holds a lazy stub that, on
  first entry, splits the block — compiling a tail function covering
  ``[index, block end)`` without the leader preamble (mid-block entries
  are not block entries, matching the closure engine's uninstrumented
  interior closures) — installs it, and runs it.
"""

from __future__ import annotations

from array import array
import re
from bisect import bisect_right
from typing import Callable, List, Tuple

from repro.isa.registers import RA, V0
from repro.machine.errors import MachineError, StepLimitExceeded
from repro.machine.trace import LOAD, PREFETCH, STORE

# simulator imports this module lazily (inside Machine.__init__), so a
# module-level import back into it is cycle-free.
from repro.machine.simulator import (_MASK, _PACK_I, _UNPACK_F,
                                     bits_to_float, float_to_bits)

_INF_BITS = float_to_bits(float("inf"))

_BRANCHES = ("beq", "bne", "blez", "bgtz", "bltz", "bgez")
_TERMINATORS = frozenset(_BRANCHES + ("j", "jal", "jr", "jalr"))

#: Chain limits: blocks fused into one function, and the pending-access
#: count past which chaining stops (bounds code bloat from the flush
#: duplicated on each conditional exit).
_CHAIN_BLOCKS = 24
_CHAIN_PENDING = 48


# -- runtime helpers (called from generated code) ----------------------
# These replicate the closure bodies verbatim; keeping them as helpers
# (rather than inlining) keeps the generated source small for the rare
# mnemonics that need multi-statement logic.

def _div32(numerator: int, denominator: int) -> int:
    denominator -= (denominator & 0x8000_0000) << 1
    if denominator == 0:
        return 0
    numerator -= (numerator & 0x8000_0000) << 1
    return int(numerator / denominator) & _MASK


def _rem32(numerator: int, denominator: int) -> int:
    denominator -= (denominator & 0x8000_0000) << 1
    if denominator == 0:
        return 0
    numerator -= (numerator & 0x8000_0000) << 1
    return (numerator - int(numerator / denominator) * denominator) & _MASK


def _ftrunc32(bits: int) -> int:
    value = bits_to_float(bits)
    if value != value or value in (float("inf"), float("-inf")):
        return 0
    return int(value) & _MASK


#: Names the generated factories unpack from the shared environment
#: tuple; block functions close over them as cell variables (one
#: LOAD_DEREF each — no attribute lookups in the hot path).
_ENV_NAMES = ("r, mem, mget, ldb, stb, sys_, counts, budget, "
              "tpa, taa, tka, tpe, tae, tke, tlen, stream, "
              "MachineError, StepLimitExceeded, "
              "pi, uf, f2b, div32, rem32, ftrunc32")


def _b2f(expr: str) -> str:
    """Inline ``bits_to_float``: register locals already satisfy the
    32-bit invariant, so the conversion is two C struct calls."""
    return f"uf(pi({expr}))[0]"


_PURE_ARITH = re.compile(r"[0-9x+\-*&|^~<>()\s]+")


def _fold(value: str) -> str:
    """Evaluate a pure-literal arithmetic expression at compile time.

    Register reads of known constants produce literal operands, so the
    ``li``/``lui``+``ori`` idioms — and the sign-extension arithmetic
    around them — collapse to a single constant here.  Anything with a
    name in it (locals, helper calls, conditionals) passes through."""
    if value.isdigit() or not _PURE_ARITH.fullmatch(value):
        return value
    try:
        folded = eval(value, {"__builtins__": {}})  # noqa: S307
    except Exception:
        return value
    return str(folded) if isinstance(folded, int) and folded >= 0 \
        else value


def _signed(expr: str) -> str:
    """Sign-extension of a masked 32-bit expression (a local or 0)."""
    if expr == "0":
        return "0"
    if expr.isdigit():
        bits = int(expr)
        return str(bits - ((bits & 0x8000_0000) << 1))
    return f"({expr} - (({expr} & 0x80000000) << 1))"


class _Emitter:
    """Emits the body of one compiled function (a block chain or tail)."""

    def __init__(self, engine: "BlockEngine", start: int, end: int, *,
                 preamble: bool):
        self.engine = engine
        self.program = engine._program
        self.traced = engine._traced
        self.start = start
        self.end = end
        self.preamble = preamble
        self.lines: List[str] = []
        #: deferred trace appends: (pc, kind, address expression)
        self.pending: List[Tuple[int, int, str]] = []
        self.used_segments: List[int] = []
        self._n_addr = 0
        self._emitted = {start}
        self._chain_budget = _CHAIN_BLOCKS
        #: registers to load at entry (read before any write)
        self.entry_loads: List[int] = []
        #: registers assigned so far (emission order == path order, so
        #: at any exit this is exactly the dirty set on that path)
        self._written: List[int] = []
        self._written_set = {0}      # $zero is never materialized
        #: registers whose current value on this path is a compile-time
        #: constant (set by immediate writes, killed by any other
        #: write); reads fold to the literal, which in turn folds
        #: dependent arithmetic and turns a ``jr`` through a
        #: just-materialized return address into a direct jump
        self._const: dict = {}
        #: the root block's entry count / the step budget are kept in
        #: locals ``c`` / ``n`` once the matching preamble is emitted
        self._count_local = False
        self._budget_local = False
        #: set when a backedge to ``start`` compiles to ``continue`` —
        #: the factory then wraps the body in ``while True:``
        self.loops = False

    # -- register localization -----------------------------------------
    def _read(self, number: int) -> str:
        if number == 0:
            return "0"
        if number in self._const:
            return str(self._const[number])
        if (number not in self._written_set
                and number not in self.entry_loads):
            self.entry_loads.append(number)
        return f"v{number}"

    def _target(self, number: int) -> str:
        """Local name for writing register ``number`` (never $zero)."""
        self._const.pop(number, None)
        if number not in self._written_set:
            self._written_set.add(number)
            self._written.append(number)
        return f"v{number}"

    def _assign(self, number: int, value: str) -> None:
        """Emit a register write, folding constant expressions.

        The local is always materialized (the escape write-back reads
        it), but a literal result is remembered so later reads fold."""
        value = _fold(value)
        name = self._target(number)
        if value.isdigit():
            self._const[number] = int(value)
        self.lines.append(f"{name} = {value}")

    def _sync_code(self, indent: str = "") -> List[str]:
        """Write dirty locals back to the shared register file."""
        return [f"{indent}r[{number}] = v{number}"
                for number in self._written]

    def _escape(self, indent: str = "") -> List[str]:
        """Everything owed before control can leave the function:
        pending trace appends, then the localized profile counters and
        dirty registers."""
        lines = self._flush_code(indent)
        if self._count_local:
            root = self.program.address_of(self.start)
            lines.append(f"{indent}counts[{root}] += c")
        if self._budget_local:
            lines.append(f"{indent}budget[0] = n")
        return lines + self._sync_code(indent)

    def emit(self) -> List[str]:
        self._emit_range(self.start, self.end, self.preamble)
        return self.lines

    def _emit_range(self, start: int, end: int, preamble: bool) -> None:
        program = self.program
        out = self.lines.append
        if preamble:
            address = program.address_of(start)
            # The root block's entry count and the step budget live in
            # locals (``c``/``n``) and write back at escapes, so a loop
            # iterating inside this function pays neither the dict
            # update nor the budget-list subscripts per iteration.
            if start == self.start:
                self._count_local = True
                out("c += 1")
            else:
                out(f"counts[{address}] += 1")
            self._budget_local = True
            out("n += 1")
            out(f"if n > {self.engine._limit}:")
            # The budget can trip mid-chain: restore the machine state
            # the closure engine would show before the raise.
            for line in self._escape(indent="    "):
                out(line)
            out(f"    raise StepLimitExceeded("
                f"'block-entry budget exceeded at {address:#x}')")
        for index in range(start, end):
            instr = program.instructions[index]
            spec = instr.spec
            if spec.is_load or spec.is_store or spec.is_prefetch:
                self._mem(program.address_of(index), instr)
            elif instr.mnemonic in _TERMINATORS:
                self._terminator(index, program.address_of(index), instr)
                return
            elif instr.mnemonic == "syscall":
                # Can raise _Exit / MachineError, reads the register
                # file (and SYS_READ_INT writes $v0): flush the trace,
                # write back, call, then re-cache $v0.
                for line in self._escape():
                    out(line)
                self.pending = []
                out("sys_()")
                if self._count_local:
                    # The escape added ``c`` into counts; restart the
                    # delta so a later escape doesn't re-add it.
                    out("c = 0")
                self._assign(V0, f"r[{V0}]")
            else:
                self._alu(instr)
        self._continue_at(end)

    def _continue_at(self, target: int) -> None:
        """Fall through / jump to ``target``: loop, chain, or return."""
        out = self.lines.append
        if target == self.start and self.preamble:
            # Backedge to this function's own root: stay inside the
            # function (``continue`` re-runs the root preamble, so
            # profiling and the budget are unchanged) instead of paying
            # a dispatch round trip per iteration.  Registers stay in
            # locals across iterations.
            self.loops = True
            for line in self._flush_code():
                out(line)
            self.pending = []
            self._spill_check(out)
            out("continue")
            return
        if (target in self.engine._leader_set
                and target not in self._emitted
                and self._chain_budget > 0
                and len(self.pending) <= _CHAIN_PENDING):
            self._chain_budget -= 1
            self._emitted.add(target)
            self._emit_range(target, self.engine._block_end(target),
                             preamble=True)
            return
        for line in self._escape():
            out(line)
        self.pending = []
        out(f"return {target}")

    def _spill_check(self, out, indent: str = "") -> None:
        """Streaming hook on in-function loop backedges.

        A fused loop runs whole iterations without returning to the
        dispatch loop, so :meth:`Machine.run_streaming` could never
        drain the trace columns mid-loop and a loop-heavy program would
        materialize its entire trace anyway.  Each backedge therefore
        re-checks the column length against the machine's stream cell
        (``[threshold, drain]``) right after the flush, when the three
        columns are consistent; outside streaming the threshold is an
        unreachable sentinel, so ``run()`` pays one C-level length call
        and an int compare per loop iteration and nothing else.
        """
        if self.engine._traced:
            out(f"{indent}if tlen() >= stream[0]:")
            out(f"{indent}    stream[1]()")

    # -- trace batching ------------------------------------------------
    def _flush_code(self, indent: str = "") -> List[str]:
        """Code appending the pending accesses (caller clears pending
        only where the path actually consumes them)."""
        pending = self.pending
        if not pending:
            return []
        if len(pending) == 1:
            pc, kind, addr = pending[0]
            return [f"{indent}tpa({pc})",
                    f"{indent}taa({addr})",
                    f"{indent}tka({kind})"]
        segment = self.engine._add_segment(
            [pc for pc, _, _ in pending], [kind for _, kind, _ in pending])
        self.used_segments.append(segment)
        addresses = ", ".join(addr for _, _, addr in pending)
        return [f"{indent}tpe(_p{segment})",
                f"{indent}tae(({addresses}))",
                f"{indent}tke(_k{segment})"]

    # -- memory instructions -------------------------------------------
    def _mem(self, address: int, instr) -> None:
        spec = instr.spec
        rs, rt, offset = instr.rs, instr.rt, instr.imm
        width, signed = spec.width, spec.signed
        out = self.lines.append
        base = self._read(rs)
        if self.traced:
            # The effective address must be captured BEFORE the memory
            # op (a load may overwrite its own base register), so it is
            # materialized into a function-unique local for the flush.
            if base.isdigit():
                # $zero or a propagated constant base: the effective
                # address is a path constant, no temp needed.
                effective = str((int(base) + offset) & _MASK)
            else:
                effective = f"a{self._n_addr}"
                self._n_addr += 1
                source = (base if offset == 0
                          else f"({base} + {offset}) & 0xFFFFFFFF")
                out(f"{effective} = {source}")
            kind = (LOAD if spec.is_load
                    else STORE if spec.is_store else PREFETCH)
            self.pending.append((address, kind, effective))
            if spec.is_prefetch:
                return
            aligned = (str(int(effective) & 0xFFFF_FFFC)
                       if effective.isdigit()
                       else f"{effective} & 0xFFFFFFFC")
        else:
            if spec.is_prefetch:
                return               # untraced prefetch: pure no-op
            if base.isdigit():
                combined = (int(base) + offset) & _MASK
                effective = str(combined)
                aligned = str(combined & 0xFFFF_FFFC)
            elif offset == 0:
                effective = base
                aligned = f"{base} & 0xFFFFFFFC"
            else:
                effective = f"({base} + {offset}) & 0xFFFFFFFF"
                aligned = f"({base} + {offset}) & 0xFFFFFFFC"
        if spec.is_load:
            value = (f"mget({aligned}, 0)" if width == 4
                     else f"ldb({effective}, {width}, {signed})")
            if rt != 0:              # a load into $zero is a dead read
                self._assign(rt, value)
        elif width == 4:
            out(f"mem[{aligned}] = {self._read(rt)}")
        else:
            out(f"stb({effective}, {width}, {self._read(rt)})")

    # -- terminators ---------------------------------------------------
    def _terminator(self, index: int, address: int, instr) -> None:
        m = instr.mnemonic
        rs, rt, rd = instr.rs, instr.rt, instr.rd
        program = self.program
        nxt = index + 1
        out = self.lines.append
        if m in ("jr", "jalr"):
            text_base, text_end = program.text_base, program.text_end
            destination = 0 if rs == 0 else self._const.get(rs)
            if destination is not None:
                # The jump target is a path constant — typically $ra
                # materialized by a jal chained earlier in this very
                # function — so the computed jump is really a direct
                # one: validate at compile time and keep chaining.
                # Call/return pairs thread straight through with no
                # dispatch round trip.
                if text_base <= destination < text_end:
                    if m == "jalr" and rd != 0:
                        self._assign(rd, str(address + 4))
                    self._continue_at((destination - text_base) >> 2)
                    return
                for line in self._escape():
                    out(line)
                self.pending = []
                out(f"raise MachineError('{m} to non-text address "
                    f"{destination:#x} at {address:#x}')")
                return
            source = self._read(rs)
            for line in self._escape():
                out(line)
            self.pending = []
            out(f"d = {source}")
            out(f"if not {text_base} <= d < {text_end}:")
            out(f"    raise MachineError(f\"{m} to non-text address "
                f"{{d:#x}} at {address:#x}\")")
            if m == "jalr" and rd != 0:
                # Written straight to the register file: the function
                # is exiting and the write-back already ran.
                out(f"r[{rd}] = {address + 4}")
            out(f"return (d - {text_base}) >> 2")
            return
        target = program.index_of(instr.imm)
        if m == "j":
            self._continue_at(target)
            return
        if m == "jal":
            self._assign(RA, str(address + 4))
            self._continue_at(target)
            return
        # Conditional branches.  ``taken`` is the condition under which
        # the branch is taken, over the *unsigned* register value: for
        # x in [0, 2**32), signed(x) > 0 iff 0 < x < 2**31, and
        # signed(x) < 0 iff x > 0x7FFFFFFF.  A constant condition
        # degenerates into a plain continuation.
        a = self._read(rs)
        if m == "beq":
            taken = True if rs == rt else f"{a} == {self._read(rt)}"
        elif m == "bne":
            taken = False if rs == rt else f"{a} != {self._read(rt)}"
        elif m == "blez":
            taken = (True if rs == 0
                     else f"not 0 < {a} < 0x80000000")
        elif m == "bgtz":
            taken = False if rs == 0 else f"0 < {a} < 0x80000000"
        elif m == "bltz":
            taken = False if rs == 0 else f"{a} > 0x7FFFFFFF"
        else:  # bgez
            taken = True if rs == 0 else f"{a} < 0x80000000"
        if taken is True:
            self._continue_at(target)
            return
        if taken is False:
            self._continue_at(nxt)
            return
        out(f"if {taken}:")
        if target == self.start and self.preamble:
            # Taken backedge to the root: flush (WITHOUT clearing — the
            # not-taken path below still owes these appends; the paths
            # are exclusive) and loop in place.
            self.loops = True
            for line in self._flush_code(indent="    "):
                out(line)
            self._spill_check(out, indent="    ")
            out("    continue")
        elif (target in self.engine._leader_set
                and target not in self._emitted
                and self._chain_budget > 0
                and len(self.pending) <= _CHAIN_PENDING):
            # Chain the TAKEN side inline too: the target block's code
            # (preamble included) is emitted inside the ``if`` body, so
            # a frequently-taken forward branch doesn't pay a dispatch
            # round trip plus re-entry register loads.  The sub-path
            # inherits copies of the pending appends and the constant
            # map (re-established by the shared prefix on every arrival
            # at the branch), and every one of its paths ends in
            # return/continue/raise, so the fall-through below resumes
            # from the pre-branch state.  The written set is NOT
            # restored: a ``continue`` inside the sub-path can carry its
            # writes into a later iteration that exits through the
            # fall-through, so every escape must sync the union of
            # writes (the factory entry-loads all written registers,
            # keeping each ``v{n}`` defined on every path).
            self._chain_budget -= 1
            self._emitted.add(target)
            saved_lines = self.lines
            saved_pending = list(self.pending)
            saved_const = dict(self._const)
            self.lines = []
            self._emit_range(target, self.engine._block_end(target),
                             preamble=True)
            sub = self.lines
            self.lines = saved_lines
            self.pending = saved_pending
            self._const = saved_const
            for line in sub:
                out("    " + line)
        else:
            for line in self._escape(indent="    "):
                out(line)
            out(f"    return {target}")
        self._continue_at(nxt)

    # -- straight-line instructions ------------------------------------
    def _alu(self, instr) -> None:
        m = instr.mnemonic
        rd, rs, rt = instr.rd, instr.rs, instr.rt
        imm, shamt = instr.imm, instr.shamt
        out = self.lines.append

        if m == "addiu":
            if rt == 0:
                return
            if rs == 0:
                value = str(imm & _MASK)
            elif imm == 0:
                value = self._read(rs)
            else:
                value = f"({self._read(rs)} + {imm}) & 0xFFFFFFFF"
            self._assign(rt, value)
            return
        if m in ("andi", "ori", "xori", "slti", "sltiu", "lui"):
            if rt == 0:
                return
            if m == "lui":
                value = str((imm << 16) & _MASK)
            elif m == "andi":
                value = "0" if rs == 0 else f"{self._read(rs)} & {imm}"
            elif m == "ori":
                value = (str(imm & _MASK) if rs == 0
                         else f"{self._read(rs)} | {imm}")
            elif m == "xori":
                value = (str(imm & _MASK) if rs == 0
                         else f"{self._read(rs)} ^ {imm}")
            elif m == "slti":
                value = (str(1 if 0 < imm else 0) if rs == 0 else
                         f"1 if {_signed(self._read(rs))} < {imm} else 0")
            else:  # sltiu
                value = (str(1 if 0 < (imm & _MASK) else 0) if rs == 0
                         else f"1 if {self._read(rs)} < {imm & _MASK} "
                              f"else 0")
            self._assign(rt, value)
            return

        # Everything below writes rd; a $zero destination is a no-op
        # (side-effect-free), which the closure engine reaches via its
        # _guard_zero wrapper.
        if rd == 0:
            return
        # An unused operand field is None; no mnemonic's expression
        # below reads the placeholder.
        a = self._read(rs) if rs is not None else "<unused>"
        b = self._read(rt) if rt is not None else "<unused>"
        if m == "addu":
            value = (a if rt == 0 else b if rs == 0
                     else f"({a} + {b}) & 0xFFFFFFFF")
        elif m == "subu":
            value = a if rt == 0 else f"({a} - {b}) & 0xFFFFFFFF"
        elif m == "mul":
            value = ("0" if rs == 0 or rt == 0
                     else f"({_signed(a)} * {_signed(b)}) & 0xFFFFFFFF")
        elif m == "div":
            value = f"div32({a}, {b})"
        elif m == "rem":
            value = f"rem32({a}, {b})"
        elif m == "and":
            value = "0" if rs == 0 or rt == 0 else f"{a} & {b}"
        elif m == "or":
            value = a if rt == 0 else b if rs == 0 else f"{a} | {b}"
        elif m == "xor":
            value = a if rt == 0 else b if rs == 0 else f"{a} ^ {b}"
        elif m == "nor":
            value = f"~({a} | {b}) & 0xFFFFFFFF"
        elif m == "slt":
            value = f"1 if {_signed(a)} < {_signed(b)} else 0"
        elif m == "sltu":
            value = ("0" if rt == 0
                     else f"1 if {b} else 0" if rs == 0
                     else f"1 if {a} < {b} else 0")
        elif m == "sll":
            value = b if shamt == 0 else f"({b} << {shamt}) & 0xFFFFFFFF"
        elif m == "srl":
            value = b if shamt == 0 else f"{b} >> {shamt}"
        elif m == "sra":
            value = (b if shamt == 0 or rt == 0
                     else f"({_signed(b)} >> {shamt}) & 0xFFFFFFFF")
        elif m == "sllv":
            value = f"({b} << ({a} & 31)) & 0xFFFFFFFF"
        elif m == "srlv":
            value = f"{b} >> ({a} & 31)"
        elif m == "srav":
            value = f"({_signed(b)} >> ({a} & 31)) & 0xFFFFFFFF"
        elif m in ("fadd", "fsub", "fmul"):
            op = {"fadd": "+", "fsub": "-", "fmul": "*"}[m]
            value = f"f2b({_b2f(a)} {op} {_b2f(b)})"
        elif m == "fdiv":
            out(f"y = {_b2f(b)}")
            value = f"f2b({_b2f(a)} / y) if y else {_INF_BITS}"
        elif m == "fneg":
            value = f"f2b(-{_b2f(a)})"
        elif m == "fcvt":
            value = ("0" if rs == 0
                     else f"f2b(float({_signed(a)}))")
        elif m == "ftrunc":
            value = f"ftrunc32({a})"
        elif m in ("feq", "flt", "fle"):
            op = {"feq": "==", "flt": "<", "fle": "<="}[m]
            value = f"1 if {_b2f(a)} {op} {_b2f(b)} else 0"
        else:  # pragma: no cover - exhaustive over SPECS
            raise MachineError(f"cannot compile mnemonic {m!r}")
        self._assign(rd, value)


class BlockEngine:
    """Per-program compiled block functions plus their dispatch table.

    ``funcs`` is index-aligned with ``program.instructions``: leader
    indices hold block-chain functions, every other index holds a lazy
    mid-block-entry stub (see module docstring).  The table is what
    :meth:`Machine.run` threads its dispatch loop over.
    """

    def __init__(self, machine) -> None:
        self._machine = machine
        program = machine.program
        self._program = program
        self._traced = machine.trace is not None
        self._limit = machine._entry_budget[1]
        self._leader_indices = [program.index_of(address)
                                for address in machine._leaders]
        self._leader_set = frozenset(self._leader_indices)
        self._segments: List[Tuple[array, array]] = []
        self._env = self._build_env()
        count = len(program.instructions)
        self.funcs: List[Callable[[], int]] = [None] * count  # type: ignore
        for index in range(count):
            if index not in self._leader_set:
                self.funcs[index] = self._make_stub(index)
        # Seed every leader's entry count, as _instrument_leader does.
        for address in machine._leaders:
            machine._block_counts[address] = 0
        self._compile_blocks()

    def _build_env(self) -> tuple:
        machine = self._machine
        trace = machine.trace
        if trace is not None:
            tpa, taa, tka = (trace.pcs.append, trace.addresses.append,
                             trace.kinds.append)
            tpe, tae, tke = (trace.pcs.extend, trace.addresses.extend,
                             trace.kinds.extend)
        else:
            tpa = taa = tka = tpe = tae = tke = None
        return (machine.regs, machine.memory, machine.memory.get,
                machine._load_bytes, machine._store_bytes,
                machine._syscall, machine._block_counts,
                machine._entry_budget,
                tpa, taa, tka, tpe, tae, tke,
                trace.pcs.__len__ if trace is not None else None,
                machine._stream,
                MachineError, StepLimitExceeded,
                _PACK_I, _UNPACK_F, float_to_bits,
                _div32, _rem32, _ftrunc32)

    def _block_end(self, leader_index: int) -> int:
        position = bisect_right(self._leader_indices, leader_index)
        return (self._leader_indices[position]
                if position < len(self._leader_indices)
                else len(self._program.instructions))

    def _add_segment(self, pcs: List[int], kinds: List[int]) -> int:
        self._segments.append((array("I", pcs), array("B", kinds)))
        return len(self._segments) - 1

    def _factory_source(self, name: str, start: int, end: int, *,
                        preamble: bool) -> str:
        emitter = _Emitter(self, start, end, preamble=preamble)
        body = emitter.emit()
        lines = [f"def {name}(E, S):",
                 f"    ({_ENV_NAMES}) = E"]
        for segment in sorted(set(emitter.used_segments)):
            lines.append(f"    _p{segment}, _k{segment} = S[{segment}]")
        lines.append("    def block():")
        prefix = "        "
        if emitter._count_local:
            lines.append(prefix + "c = 0")
        if emitter._budget_local:
            lines.append(prefix + "n = budget[0]")
        # Entry-load every upward-exposed read AND every written
        # register: escapes sync the union of writes over all emitted
        # paths, so each v{n} must be defined even on paths that never
        # assign it.
        loaded = set()
        for number in emitter.entry_loads + emitter._written:
            if number not in loaded:
                loaded.add(number)
                lines.append(f"{prefix}v{number} = r[{number}]")
        if emitter.loops:
            lines.append(prefix + "while True:")
            prefix += "    "
        for line in body:
            lines.append(prefix + line)
        lines.append("    return block")
        return "\n".join(lines) + "\n"

    def _compile_blocks(self) -> None:
        indices = self._leader_indices
        chunks: List[str] = []
        for position, start in enumerate(indices):
            chunks.append(self._factory_source(
                f"_f{position}", start, self._block_end(start),
                preamble=True))
        self.source = "\n".join(chunks)
        namespace: dict = {}
        exec(compile(self.source, "<repro-block-codegen>", "exec"),
             namespace)
        for position, start in enumerate(indices):
            self.funcs[start] = namespace[f"_f{position}"](self._env,
                                                           self._segments)

    # -- mid-block entries ---------------------------------------------
    def _make_stub(self, index: int) -> Callable[[], int]:
        funcs = self.funcs

        def enter_mid_block() -> int:
            tail = self._compile_tail(index)
            funcs[index] = tail
            return tail()

        return enter_mid_block

    def _compile_tail(self, index: int) -> Callable[[], int]:
        """Split the containing block: compile ``[index, block end)``.

        No leader preamble — a mid-block entry is not a block entry, so
        it contributes to neither ``block_counts`` nor the step budget
        (exactly like the closure engine's uninstrumented interior
        closures).
        """
        end = self._block_end(index)
        source = self._factory_source("_tail", index, end, preamble=False)
        namespace: dict = {}
        exec(compile(source, "<repro-block-codegen-tail>", "exec"),
             namespace)
        return namespace["_tail"](self._env, self._segments)
