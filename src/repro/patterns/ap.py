"""Address patterns (Section 5.1 of the paper).

An address pattern summarizes the data-flow subgraph computing a load's
effective address, expressed over the base registers ``gp``, ``sp``,
``reg_param`` and ``reg_ret`` with arithmetic operators and a dereference
operator.  The paper's grammar::

    AP -> AP(AP) | AP * AP | AP + AP | AP - AP
        | AP << AP | AP >> AP | const | BR
    BR -> gp | sp | reg_param | reg_ret

We extend it internally with bitwise operators (mask-based indexing is
common and must not be silently dropped), an ``Opaque`` leaf for values the
grammar cannot express (comparison results and the like), and a ``Rec``
leaf marking the cut point of a recurrence (criterion H4).

The pretty-printer reproduces the paper's notation: dereference is
parenthesization, e.g. ``45(sp)+30`` is *load word at sp+45, plus 30*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Union

# Base register kinds (the paper's BR nonterminal plus a catch-all).
BR_GP = "gp"
BR_SP = "sp"
BR_PARAM = "reg_param"
BR_RET = "reg_ret"
BR_OTHER = "other"


@dataclass(frozen=True)
class Const:
    value: int

    def __str__(self) -> str:
        return str(self.value)


@dataclass(frozen=True)
class Base:
    kind: str       # one of the BR_* constants

    def __str__(self) -> str:
        return self.kind


@dataclass(frozen=True)
class BinOp:
    op: str         # '+', '-', '*', '<<', '>>', '&', '|', '^'
    left: "APNode"
    right: "APNode"

    def __str__(self) -> str:
        return f"{_operand_str(self.left)}{self.op}{_operand_str(self.right)}"


@dataclass(frozen=True)
class Deref:
    address: "APNode"

    def __str__(self) -> str:
        # MIPS-flavoured printing: Deref(base + const) -> "const(base)".
        addr = self.address
        if isinstance(addr, BinOp) and addr.op == "+" \
                and isinstance(addr.right, Const):
            return f"{addr.right.value}({addr.left})"
        if isinstance(addr, BinOp) and addr.op == "+" \
                and isinstance(addr.left, Const):
            return f"{addr.left.value}({addr.right})"
        return f"({addr})"


@dataclass(frozen=True)
class Rec:
    """Marks where expansion was cut because the value recurs (H4)."""

    def __str__(self) -> str:
        return "<rec>"


@dataclass(frozen=True)
class Opaque:
    """A value outside the AP grammar (e.g. a comparison result)."""

    def __str__(self) -> str:
        return "<opaque>"


APNode = Union[Const, Base, BinOp, Deref, Rec, Opaque]

_PRECEDENCE = {"*": 3, "<<": 1, ">>": 1, "+": 2, "-": 2,
               "&": 0, "|": 0, "^": 0}


def _operand_str(node: APNode) -> str:
    if isinstance(node, BinOp):
        return f"({node})" if _PRECEDENCE.get(node.op, 0) <= 1 else str(node)
    return str(node)


def add(left: APNode, right: APNode) -> APNode:
    """Build ``left + right`` with light constant folding."""
    if isinstance(left, Const) and left.value == 0:
        return right
    if isinstance(right, Const) and right.value == 0:
        return left
    if isinstance(left, Const) and isinstance(right, Const):
        return Const(left.value + right.value)
    # Keep constants to the right so the printer produces "off(base)".
    if isinstance(left, Const):
        return BinOp("+", right, left)
    return BinOp("+", left, right)


@dataclass(frozen=True)
class APFeatures:
    """Structural features of one address pattern, for classification."""

    sp_count: int = 0
    gp_count: int = 0
    param_count: int = 0
    ret_count: int = 0
    other_count: int = 0
    deref_depth: int = 0          # maximum nesting of Deref
    deref_count: int = 0          # total number of Deref nodes
    has_mul: bool = False
    has_shift: bool = False
    has_recurrence: bool = False
    const_add_count: int = 0

    @property
    def base_count(self) -> int:
        return (self.sp_count + self.gp_count + self.param_count
                + self.ret_count + self.other_count)


def features_of(pattern: APNode) -> APFeatures:
    """Walk ``pattern`` and collect its classification features."""
    counts = {BR_SP: 0, BR_GP: 0, BR_PARAM: 0, BR_RET: 0, BR_OTHER: 0}
    state = {"mul": False, "shift": False, "rec": False, "max_depth": 0,
             "derefs": 0, "const_adds": 0}

    def walk(node: APNode, depth: int) -> None:
        if isinstance(node, Base):
            counts[node.kind] += 1
        elif isinstance(node, Rec):
            state["rec"] = True
        elif isinstance(node, BinOp):
            if node.op == "*":
                state["mul"] = True
            elif node.op in ("<<", ">>"):
                state["shift"] = True
            elif node.op == "+" and (isinstance(node.left, Const)
                                     or isinstance(node.right, Const)):
                state["const_adds"] += 1
            walk(node.left, depth)
            walk(node.right, depth)
        elif isinstance(node, Deref):
            state["derefs"] += 1
            if depth + 1 > state["max_depth"]:
                state["max_depth"] = depth + 1
            walk(node.address, depth + 1)

    walk(pattern, 0)
    return APFeatures(
        sp_count=counts[BR_SP],
        gp_count=counts[BR_GP],
        param_count=counts[BR_PARAM],
        ret_count=counts[BR_RET],
        other_count=counts[BR_OTHER],
        deref_depth=state["max_depth"],
        deref_count=state["derefs"],
        has_mul=state["mul"],
        has_shift=state["shift"],
        has_recurrence=state["rec"],
        const_add_count=state["const_adds"],
    )


def pattern_size(pattern: APNode) -> int:
    """Number of nodes, used to cap expansion."""
    if isinstance(pattern, BinOp):
        return 1 + pattern_size(pattern.left) + pattern_size(pattern.right)
    if isinstance(pattern, Deref):
        return 1 + pattern_size(pattern.address)
    return 1
