"""Recurrence detection through memory slots (criterion H4).

In unoptimized code induction variables live in stack slots (``i = i + 1``
compiles to *load slot, add, store slot*) and list cursors can live in
globals (``head = head->next``), so a purely register-level cycle check
never sees the recurrence — it flows through memory.  This analysis finds,
per natural loop, the set of ``sp``/``gp``-relative slots that are updated
inside the loop as a (transitive) function of themselves; any address
pattern that dereferences such a slot from inside that loop is recurrent.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterable, Optional, Union

from repro.cfg.graph import FunctionCFG, Loop
from repro.dataflow.reachdefs import ENTRY
from repro.isa.instructions import Instruction, branch_target
from repro.isa.registers import GP, SP, ZERO
from repro.patterns.ap import APFeatures, APNode, Base, BinOp, Const, Deref

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataflow.reachdefs import ReachingDefinitions

#: A memory slot addressed directly off a terminal base register.
Slot = tuple[str, int]          # ("sp" | "gp", byte offset)

_MAX_DEP_DEPTH = 16


def slot_of_address(base_reg: int, offset: int) -> Optional[Slot]:
    if base_reg == SP:
        return ("sp", offset)
    if base_reg == GP:
        return ("gp", offset)
    return None


def slot_of_pattern(node: APNode) -> Optional[Slot]:
    """The slot a ``Deref`` node reads, if its address is base+const."""
    if isinstance(node, Base):
        if node.kind in ("sp", "gp"):
            return (node.kind, 0)
        return None
    if isinstance(node, BinOp) and node.op == "+":
        if isinstance(node.left, Base) and isinstance(node.right, Const):
            if node.left.kind in ("sp", "gp"):
                return (node.left.kind, node.right.value)
        if isinstance(node.right, Base) and isinstance(node.left, Const):
            if node.right.kind in ("sp", "gp"):
                return (node.right.kind, node.left.value)
    return None


def slots_dereferenced(pattern: APNode) -> set[Slot]:
    """All sp/gp slots read by ``Deref`` nodes anywhere in the pattern."""
    found: set[Slot] = set()

    def walk(node: APNode) -> None:
        if isinstance(node, Deref):
            slot = slot_of_pattern(node.address)
            if slot is not None:
                found.add(slot)
            walk(node.address)
        elif isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)

    walk(pattern)
    return found


#: Block-local symbolic value: a compile-time constant, or the value a
#: slot held at block entry plus a constant addend.
SymVal = Union[tuple[str, Slot, int], tuple[str, int]]  # ("slot",s,k)|("const",v)


@dataclass(frozen=True)
class TripCount:
    """Symbolic trip count of one natural loop.

    ``count`` is the exact number of body executions when the loop is a
    counted slot-IV loop with constant init/bound/step, ``None`` when the
    bound could not be resolved statically.  ``step`` is the signed
    per-iteration increment of the controlling slot (negative for
    down-counting loops, possibly non-unit); it may be known even when
    ``count`` is not.
    """

    count: Optional[int]
    iv_slot: Optional[Slot] = None
    step: Optional[int] = None
    init: Optional[int] = None
    bound: Optional[int] = None

    @property
    def exact(self) -> bool:
        return self.count is not None

    @property
    def zero_trip(self) -> bool:
        return self.count == 0


def motion_kind(features: Iterable[APFeatures]) -> str:
    """Uniform address-motion classification shared by the prefetch
    heuristics and the analytic predictor.

    * ``"strided"`` — scaled (mul/shift) recurrent address: a classic
      induction-variable array walk.
    * ``"indexed"`` — scaled but not provably recurrent (e.g. gather via
      a computed index).
    * ``"direct"`` — unscaled: scalar slots, pointer fields, constants.
    """
    feats = list(features)
    if any((f.has_mul or f.has_shift) and f.has_recurrence for f in feats):
        return "strided"
    if any(f.has_mul or f.has_shift for f in feats):
        return "indexed"
    return "direct"


def _negate(op: str) -> str:
    return {"<": ">=", "<=": ">", ">": "<=", ">=": "<", "==": "!=",
            "!=": "=="}[op]


def _flip(op: str) -> str:
    """Mirror a comparison so the IV ends up on the left."""
    return {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==",
            "!=": "!="}[op]


def _ceil_div(a: int, b: int) -> int:
    return -(-a // b)


def _solve_trips(init: int, step: int, op: str, bound: int) -> Optional[int]:
    """Number of iterations n >= 0 for which ``init + n*step  <op>  bound``
    holds at the loop header, i.e. the number of body executions of a loop
    that continues while the condition is true."""
    if op == "<":
        if init >= bound:
            return 0
        if step > 0:
            return _ceil_div(bound - init, step)
        return None                     # non-terminating or unknown
    if op == "<=":
        if init > bound:
            return 0
        if step > 0:
            return (bound - init) // step + 1
        return None
    if op == ">":
        if init <= bound:
            return 0
        if step < 0:
            return _ceil_div(init - bound, -step)
        return None
    if op == ">=":
        if init < bound:
            return 0
        if step < 0:
            return (init - bound) // (-step) + 1
        return None
    if op == "!=":
        if init == bound:
            return 0
        if step != 0 and (bound - init) % step == 0:
            n = (bound - init) // step
            if n > 0:
                return n
        return None
    if op == "==":
        if init != bound:
            return 0
        return None if step == 0 else 1
    return None


class SlotRecurrence:
    """Per-loop recurrent-slot sets for one function."""

    def __init__(self, cfg: FunctionCFG, rd: "ReachingDefinitions"):
        self.cfg = cfg
        self.rd = rd
        self._cache: dict[tuple[int, int], frozenset[Slot]] = {}
        self._steps_cache: dict[tuple[int, int],
                                dict[Slot, Optional[int]]] = {}
        self._trip_cache: dict[tuple[int, int], TripCount] = {}

    # ------------------------------------------------------------------
    def pattern_recurs(self, pattern: APNode, load_address: int) -> bool:
        """True when ``pattern`` dereferences a slot that recurs in a loop
        containing the load."""
        loops = self.cfg.loops_containing(load_address)
        if not loops:
            return False
        slots = slots_dereferenced(pattern)
        if not slots:
            return False
        for loop in loops:
            if slots & self.recurrent_slots(loop):
                return True
        return False

    def recurrent_slots(self, loop: Loop) -> frozenset[Slot]:
        key = (loop.header, loop.latch)
        if key not in self._cache:
            self._cache[key] = self._compute(loop)
        return self._cache[key]

    # ------------------------------------------------------------------
    def _compute(self, loop: Loop) -> frozenset[Slot]:
        # Edges: stored slot -> slots its stored value depends on.
        edges: dict[Slot, set[Slot]] = {}
        for leader in loop.body:
            block = self.cfg.block(leader)
            for offset, instr in enumerate(block.instructions):
                if not instr.is_store:
                    continue
                slot = slot_of_address(instr.rs, instr.imm)
                if slot is None:
                    continue
                address = block.start + 4 * offset
                deps = self._slot_deps(instr.rt, address, ())
                edges.setdefault(slot, set()).update(deps)
        return frozenset(self._slots_on_cycles(edges))

    @staticmethod
    def _slots_on_cycles(edges: dict[Slot, set[Slot]]) -> set[Slot]:
        recurrent: set[Slot] = set()
        for start in edges:
            # Is `start` reachable from itself?
            stack = list(edges.get(start, ()))
            seen: set[Slot] = set()
            while stack:
                node = stack.pop()
                if node == start:
                    recurrent.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(edges.get(node, ()))
        return recurrent

    def _slot_deps(self, reg: int, use_site: int,
                   stack: tuple) -> set[Slot]:
        """Slots the value of ``reg`` at ``use_site`` was derived from."""
        if reg in (ZERO, SP, GP) or len(stack) >= _MAX_DEP_DEPTH:
            return set()
        deps: set[Slot] = set()
        for site in self.rd.reaching(use_site, reg):
            if site == ENTRY:
                continue
            key = (site, reg)
            if key in stack:
                continue
            instr = self.rd.instruction_at(site)
            if instr.is_call:
                continue
            deps.update(self._instr_deps(instr, site, stack + (key,)))
        return deps

    def _instr_deps(self, instr: Instruction, site: int,
                    stack: tuple) -> set[Slot]:
        if instr.is_load:
            slot = slot_of_address(instr.rs, instr.imm)
            if slot is not None:
                return {slot}
            return self._slot_deps(instr.rs, site, stack)
        deps: set[Slot] = set()
        for reg in instr.uses():
            deps.update(self._slot_deps(reg, site, stack))
        return deps

    # -- symbolic trip counts and strides ------------------------------

    def slot_steps(self, loop: Loop) -> dict[Slot, Optional[int]]:
        """Signed constant per-iteration increments of slots updated in
        ``loop``: slot -> step for ``slot = slot + c`` updates, ``None``
        for any other kind of update."""
        key = (loop.header, loop.latch)
        if key not in self._steps_cache:
            self._steps_cache[key] = self._compute_steps(loop)
        return self._steps_cache[key]

    def trip_count(self, loop: Loop) -> TripCount:
        key = (loop.header, loop.latch)
        if key not in self._trip_cache:
            self._trip_cache[key] = self._compute_trip(loop)
        return self._trip_cache[key]

    def _compute_steps(self, loop: Loop) -> dict[Slot, Optional[int]]:
        steps: dict[Slot, Optional[int]] = {}
        for leader in sorted(loop.body):
            block = self.cfg.block(leader)
            values = _BlockValues()
            for instr in block.instructions:
                if instr.is_store:
                    slot = slot_of_address(instr.rs, instr.imm)
                    if slot is not None:
                        val = values.get(instr.rt)
                        step: Optional[int] = None
                        if (val is not None and val[0] == "slot"
                                and val[1] == slot):
                            step = val[2]
                        if slot in steps and steps[slot] != step:
                            steps[slot] = None
                        else:
                            steps[slot] = step
                values.update(instr)
        return steps

    def _compute_trip(self, loop: Loop) -> TripCount:
        header = self.cfg.block(loop.header)
        term = header.terminator
        if term is None or not term.is_branch:
            return TripCount(None)
        cond = self._header_condition(header, term, loop)
        if cond is None:
            return TripCount(None)
        left, op, right = cond
        steps = self.slot_steps(loop)

        def resolve(val) -> tuple[Optional[Slot], Optional[int]]:
            # -> (iv_slot, numeric value); exactly one side is the IV.
            if val[0] == "const":
                return None, val[1]
            slot = val[1]
            if steps.get(slot) is not None:
                init = self._initial_slot_value(loop, slot)
                if init is None:
                    return slot, None
                return slot, init + val[2]
            if slot in steps:               # updated, but not a counter
                return slot, None
            init = self._initial_slot_value(loop, slot)
            if init is None:
                return None, None
            return None, init + val[2]

        lslot, lval = resolve(left)
        rslot, rval = resolve(right)
        if lslot is not None and rslot is None:
            iv, init, bound = lslot, lval, rval
        elif rslot is not None and lslot is None:
            iv, init, bound = rslot, rval, lval
            op = _flip(op)
        else:
            return TripCount(None)
        step = steps.get(iv)
        if init is None or bound is None or step is None:
            return TripCount(None, iv_slot=iv, step=step)
        count = _solve_trips(init, step, op, bound)
        return TripCount(count, iv_slot=iv, step=step, init=init,
                         bound=bound)

    def _header_condition(self, header, term: Instruction, loop: Loop):
        """The condition under which the loop CONTINUES, as
        ``(left, op, right)`` with SymVal operands, or None."""
        values = _BlockValues()
        for instr in header.instructions:
            if instr is term:
                break
            values.update(instr)
        taken = branch_target(term)
        taken_block = self.cfg.block_of(taken) if taken is not None else None
        if taken_block is None:
            return None
        taken_continues = taken_block.start in loop.body

        mn = term.mnemonic
        if mn in ("beq", "bne"):
            a, b = values.get(term.rs), values.get(term.rt)
            # Common shape: branch on the boolean result of a `slt`.
            for creg, other in ((term.rs, term.rt), (term.rt, term.rs)):
                cond = values.get_cmp(creg)
                if cond is not None and other == ZERO:
                    left, op, right = cond
                    # beq c,$zero: taken when the slt was FALSE.
                    taken_when_true = (mn == "bne")
                    if taken_continues != taken_when_true:
                        op = _negate(op)
                    return left, op, right
            if a is None or b is None:
                return None
            op = "==" if mn == "beq" else "!="
            if not taken_continues:
                op = _negate(op)
            return a, op, b
        if mn in ("blez", "bgtz", "bltz", "bgez"):
            a = values.get(term.rs)
            if a is None:
                return None
            op = {"blez": "<=", "bgtz": ">", "bltz": "<", "bgez": ">="}[mn]
            if not taken_continues:
                op = _negate(op)
            return a, op, ("const", 0)
        return None

    def _initial_slot_value(self, loop: Loop, slot: Slot) -> Optional[int]:
        """Constant stored to ``slot`` on every path into the loop header
        from outside the loop, or None."""
        result: Optional[int] = None
        for pred in self.cfg.predecessors(loop.header):
            if pred in loop.body:
                continue
            value = self._last_store_value(pred, slot, hops=6)
            if value is None or (result is not None and value != result):
                return None
            result = value
        return result

    def _last_store_value(self, leader: int, slot: Slot,
                          hops: int) -> Optional[int]:
        block = self.cfg.block(leader)
        values = _BlockValues()
        stored: Optional[SymVal] = None
        for instr in block.instructions:
            if instr.is_store and slot_of_address(instr.rs, instr.imm) == slot:
                stored = values.get(instr.rt)
            values.update(instr)
        if stored is not None:
            return stored[1] if stored[0] == "const" else None
        if hops <= 0:
            return None
        preds = self.cfg.predecessors(leader)
        if len(preds) != 1:
            return None
        return self._last_store_value(preds[0], slot, hops - 1)


def _sym_add(value: Optional[SymVal], delta: int) -> Optional[SymVal]:
    if value is None:
        return None
    if value[0] == "const":
        return ("const", value[1] + delta)
    return ("slot", value[1], value[2] + delta)


class _BlockValues:
    """Forward block-local symbolic evaluation of register values.

    Tracks registers holding either compile-time constants or
    *slot-at-block-entry + constant* values, plus the results of ``slt``
    comparisons between such values.  Anything else becomes unknown.
    """

    def __init__(self) -> None:
        self.regs: dict[int, SymVal] = {}
        self.cmps: dict[int, tuple[SymVal, str, SymVal]] = {}

    def get(self, reg: Optional[int]) -> Optional[SymVal]:
        if reg == ZERO:
            return ("const", 0)
        return self.regs.get(reg) if reg is not None else None

    def get_cmp(self, reg: Optional[int]):
        return self.cmps.get(reg) if reg is not None else None

    def update(self, instr: Instruction) -> None:
        mn = instr.mnemonic
        if instr.is_load:
            self._set(instr.rt, None)
            slot = slot_of_address(instr.rs, instr.imm)
            if slot is not None:
                self._set(instr.rt, ("slot", slot, 0))
            return
        if mn == "addiu" or mn == "addi":
            base = self.get(instr.rs)
            self._set(instr.rt, _sym_add(base, instr.imm))
            return
        if mn in ("addu", "add", "subu", "sub"):
            a, b = self.get(instr.rs), self.get(instr.rt)
            neg = mn in ("subu", "sub")
            if b is not None and b[0] == "const":
                delta = -b[1] if neg else b[1]
                self._set(instr.rd, _sym_add(a, delta))
            elif (not neg and a is not None and a[0] == "const"
                  and b is not None):
                self._set(instr.rd, _sym_add(b, a[1]))
            else:
                self._set(instr.rd, None)
            return
        if mn in ("xor", "or"):
            a, b = self.get(instr.rs), self.get(instr.rt)
            if a == ("const", 0):
                self._set(instr.rd, b)
            elif b == ("const", 0):
                self._set(instr.rd, a)
            elif (a is not None and b is not None
                  and a[0] == b[0] == "const"):
                val = a[1] ^ b[1] if mn == "xor" else a[1] | b[1]
                self._set(instr.rd, ("const", val))
            else:
                self._set(instr.rd, None)
            return
        if mn in ("xori", "ori") and instr.imm == 0:
            self._set(instr.rt, self.get(instr.rs))
            return
        if mn in ("slt", "sltu"):
            a, b = self.get(instr.rs), self.get(instr.rt)
            self._set(instr.rd, None)
            if a is not None and b is not None and instr.rd is not None:
                self.cmps[instr.rd] = (a, "<", b)
            return
        if mn in ("slti", "sltiu"):
            a = self.get(instr.rs)
            self._set(instr.rt, None)
            if a is not None and instr.rt is not None:
                self.cmps[instr.rt] = (a, "<", ("const", instr.imm))
            return
        for reg in instr.defs():
            self._set(reg, None)

    def _set(self, reg: Optional[int], value: Optional[SymVal]) -> None:
        if reg is None or reg == ZERO:
            return
        self.cmps.pop(reg, None)
        if value is None:
            self.regs.pop(reg, None)
        else:
            self.regs[reg] = value
