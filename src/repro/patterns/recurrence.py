"""Recurrence detection through memory slots (criterion H4).

In unoptimized code induction variables live in stack slots (``i = i + 1``
compiles to *load slot, add, store slot*) and list cursors can live in
globals (``head = head->next``), so a purely register-level cycle check
never sees the recurrence — it flows through memory.  This analysis finds,
per natural loop, the set of ``sp``/``gp``-relative slots that are updated
inside the loop as a (transitive) function of themselves; any address
pattern that dereferences such a slot from inside that loop is recurrent.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Optional

from repro.cfg.graph import FunctionCFG, Loop
from repro.dataflow.reachdefs import ENTRY
from repro.isa.instructions import Instruction
from repro.isa.registers import GP, SP, ZERO
from repro.patterns.ap import APNode, Base, BinOp, Const, Deref

if TYPE_CHECKING:  # pragma: no cover
    from repro.dataflow.reachdefs import ReachingDefinitions

#: A memory slot addressed directly off a terminal base register.
Slot = tuple[str, int]          # ("sp" | "gp", byte offset)

_MAX_DEP_DEPTH = 16


def slot_of_address(base_reg: int, offset: int) -> Optional[Slot]:
    if base_reg == SP:
        return ("sp", offset)
    if base_reg == GP:
        return ("gp", offset)
    return None


def slot_of_pattern(node: APNode) -> Optional[Slot]:
    """The slot a ``Deref`` node reads, if its address is base+const."""
    if isinstance(node, Base):
        if node.kind in ("sp", "gp"):
            return (node.kind, 0)
        return None
    if isinstance(node, BinOp) and node.op == "+":
        if isinstance(node.left, Base) and isinstance(node.right, Const):
            if node.left.kind in ("sp", "gp"):
                return (node.left.kind, node.right.value)
        if isinstance(node.right, Base) and isinstance(node.left, Const):
            if node.right.kind in ("sp", "gp"):
                return (node.right.kind, node.left.value)
    return None


def slots_dereferenced(pattern: APNode) -> set[Slot]:
    """All sp/gp slots read by ``Deref`` nodes anywhere in the pattern."""
    found: set[Slot] = set()

    def walk(node: APNode) -> None:
        if isinstance(node, Deref):
            slot = slot_of_pattern(node.address)
            if slot is not None:
                found.add(slot)
            walk(node.address)
        elif isinstance(node, BinOp):
            walk(node.left)
            walk(node.right)

    walk(pattern)
    return found


class SlotRecurrence:
    """Per-loop recurrent-slot sets for one function."""

    def __init__(self, cfg: FunctionCFG, rd: "ReachingDefinitions"):
        self.cfg = cfg
        self.rd = rd
        self._cache: dict[tuple[int, int], frozenset[Slot]] = {}

    # ------------------------------------------------------------------
    def pattern_recurs(self, pattern: APNode, load_address: int) -> bool:
        """True when ``pattern`` dereferences a slot that recurs in a loop
        containing the load."""
        loops = self.cfg.loops_containing(load_address)
        if not loops:
            return False
        slots = slots_dereferenced(pattern)
        if not slots:
            return False
        for loop in loops:
            if slots & self.recurrent_slots(loop):
                return True
        return False

    def recurrent_slots(self, loop: Loop) -> frozenset[Slot]:
        key = (loop.header, loop.latch)
        if key not in self._cache:
            self._cache[key] = self._compute(loop)
        return self._cache[key]

    # ------------------------------------------------------------------
    def _compute(self, loop: Loop) -> frozenset[Slot]:
        # Edges: stored slot -> slots its stored value depends on.
        edges: dict[Slot, set[Slot]] = {}
        for leader in loop.body:
            block = self.cfg.block(leader)
            for offset, instr in enumerate(block.instructions):
                if not instr.is_store:
                    continue
                slot = slot_of_address(instr.rs, instr.imm)
                if slot is None:
                    continue
                address = block.start + 4 * offset
                deps = self._slot_deps(instr.rt, address, ())
                edges.setdefault(slot, set()).update(deps)
        return frozenset(self._slots_on_cycles(edges))

    @staticmethod
    def _slots_on_cycles(edges: dict[Slot, set[Slot]]) -> set[Slot]:
        recurrent: set[Slot] = set()
        for start in edges:
            # Is `start` reachable from itself?
            stack = list(edges.get(start, ()))
            seen: set[Slot] = set()
            while stack:
                node = stack.pop()
                if node == start:
                    recurrent.add(start)
                    break
                if node in seen:
                    continue
                seen.add(node)
                stack.extend(edges.get(node, ()))
        return recurrent

    def _slot_deps(self, reg: int, use_site: int,
                   stack: tuple) -> set[Slot]:
        """Slots the value of ``reg`` at ``use_site`` was derived from."""
        if reg in (ZERO, SP, GP) or len(stack) >= _MAX_DEP_DEPTH:
            return set()
        deps: set[Slot] = set()
        for site in self.rd.reaching(use_site, reg):
            if site == ENTRY:
                continue
            key = (site, reg)
            if key in stack:
                continue
            instr = self.rd.instruction_at(site)
            if instr.is_call:
                continue
            deps.update(self._instr_deps(instr, site, stack + (key,)))
        return deps

    def _instr_deps(self, instr: Instruction, site: int,
                    stack: tuple) -> set[Slot]:
        if instr.is_load:
            slot = slot_of_address(instr.rs, instr.imm)
            if slot is not None:
                return {slot}
            return self._slot_deps(instr.rs, site, stack)
        deps: set[Slot] = set()
        for reg in instr.uses():
            deps.update(self._slot_deps(reg, site, stack))
        return deps
