"""Address-pattern construction by backward substitution.

For each load, the address source operand (``off($rs)``) is expanded by
walking reaching definitions backwards: intermediate registers are
eliminated and the expression is rewritten over base registers (``sp``,
``gp``, ``reg_param``, ``reg_ret``), constants, arithmetic and dereference
nodes (loads encountered during expansion).  A load reached through
multiple control paths gets one pattern per reaching-definition choice
(capped), exactly as Section 5.1 describes.

Recurrence (criterion H4) is detected two ways:

* **register recurrences** — expansion revisits a definition already on
  the expansion stack (an induction register in optimized code);
* **stack/global-slot recurrences** — in unoptimized code induction
  variables live in memory, so a separate analysis
  (:mod:`repro.patterns.recurrence`) finds slots updated inside a loop as
  a function of themselves, and any pattern dereferencing such a slot is
  marked recurrent.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional

from repro.asm.program import Program
from repro.cfg.blocks import BlockMap
from repro.cfg.graph import FunctionCFG, build_function_cfgs
from repro.dataflow.reachdefs import ENTRY, ReachingDefinitions
from repro.isa.instructions import Instruction
from repro.isa.registers import (
    GP, SP, ZERO, is_param_register, is_return_register,
)
from repro.patterns import ap
from repro.patterns.ap import (
    APFeatures, APNode, Base, BinOp, Const, Deref, Opaque, Rec,
    features_of,
)
from repro.patterns.recurrence import SlotRecurrence

MAX_PATTERNS = 16
MAX_DEPTH = 24
MAX_SIZE = 80


def _binop(op: str, left: APNode, right: APNode) -> APNode:
    """Construct a binary node with constant folding."""
    if isinstance(left, Const) and isinstance(right, Const):
        folds = {
            "+": left.value + right.value,
            "-": left.value - right.value,
            "*": left.value * right.value,
            "<<": left.value << (right.value & 31),
            ">>": left.value >> (right.value & 31),
            "&": left.value & right.value,
            "|": left.value | right.value,
            "^": left.value ^ right.value,
        }
        if op in folds:
            return Const(folds[op])
    if op == "+":
        return ap.add(left, right)
    return BinOp(op, left, right)


@dataclass
class LoadInfo:
    """Everything the classifiers need to know about one static load."""

    address: int
    function: str
    instruction: Instruction
    patterns: list[APNode] = field(default_factory=list)
    features: list[APFeatures] = field(default_factory=list)

    @property
    def max_deref_depth(self) -> int:
        return max((f.deref_depth for f in self.features), default=0)

    @property
    def has_recurrence(self) -> bool:
        return any(f.has_recurrence for f in self.features)


class PatternBuilder:
    """Builds address patterns for every load in one function."""

    def __init__(self, cfg: FunctionCFG,
                 max_patterns: int = MAX_PATTERNS,
                 max_depth: int = MAX_DEPTH,
                 slot_recurrence: bool = True):
        self.cfg = cfg
        self.rd = ReachingDefinitions(cfg)
        self.max_patterns = max_patterns
        self.max_depth = max_depth
        # Slot-aware recurrence is essential for -O0 code (induction
        # variables live in memory); the flag exists for the ablation
        # bench that quantifies exactly that.
        self.slot_rec = SlotRecurrence(cfg, self.rd) \
            if slot_recurrence else None

    # ------------------------------------------------------------------
    def load_info(self, address: int) -> LoadInfo:
        instr = self.rd.instruction_at(address)
        assert instr.is_load
        return self.access_info(address)

    def access_info(self, address: int) -> LoadInfo:
        """Address patterns for any memory access (load *or* store).

        Pattern expansion only consumes the base-address register, which
        loads and stores share, so the machinery is identical; the
        analytic predictor uses this to model store footprints too.
        """
        instr = self.rd.instruction_at(address)
        base_patterns = self._expand_reg(instr.rs, address, ())
        patterns: list[APNode] = []
        seen: set[APNode] = set()
        for base in base_patterns:
            pattern = ap.add(base, Const(instr.imm)) if instr.imm \
                else base
            if pattern not in seen:
                seen.add(pattern)
                patterns.append(pattern)
        patterns = patterns[:self.max_patterns]
        features = [self._featurize(p, address) for p in patterns]
        return LoadInfo(address=address, function=self.cfg.name,
                        instruction=instr, patterns=patterns,
                        features=features)

    def _featurize(self, pattern: APNode, load_address: int) -> APFeatures:
        feats = features_of(pattern)
        if self.slot_rec is not None and not feats.has_recurrence \
                and self.slot_rec.pattern_recurs(pattern, load_address):
            feats = replace(feats, has_recurrence=True)
        return feats

    # -- expansion -----------------------------------------------------
    def _expand_reg(self, reg: int, use_site: int,
                    stack: tuple) -> list[APNode]:
        if reg == ZERO:
            return [Const(0)]
        if reg == SP:
            return [Base(ap.BR_SP)]
        if reg == GP:
            return [Base(ap.BR_GP)]
        if len(stack) >= self.max_depth:
            return [Opaque()]
        results: list[APNode] = []
        for site in sorted(self.rd.reaching(use_site, reg)):
            if site == ENTRY:
                results.append(self._entry_base(reg))
                continue
            key = (site, reg)
            if key in stack:
                results.append(Rec())
                continue
            instr = self.rd.instruction_at(site)
            if instr.is_call:
                results.append(Base(ap.BR_RET) if is_return_register(reg)
                               else Base(ap.BR_OTHER))
                continue
            results.extend(
                self._expand_def(instr, site, stack + (key,)))
            if len(results) >= self.max_patterns:
                break
        deduped: list[APNode] = []
        seen: set[APNode] = set()
        for node in results:
            if node not in seen and ap.pattern_size(node) <= MAX_SIZE:
                seen.add(node)
                deduped.append(node)
        return deduped[:self.max_patterns] or [Opaque()]

    @staticmethod
    def _entry_base(reg: int) -> APNode:
        if is_param_register(reg):
            return Base(ap.BR_PARAM)
        if is_return_register(reg):
            return Base(ap.BR_RET)
        return Base(ap.BR_OTHER)

    def _expand_def(self, instr: Instruction, site: int,
                    stack: tuple) -> list[APNode]:
        m = instr.mnemonic
        if m == "addiu":
            return [_binop("+", p, Const(instr.imm))
                    for p in self._expand_reg(instr.rs, site, stack)]
        if m in ("addu", "subu", "mul", "and", "or", "xor"):
            op = {"addu": "+", "subu": "-", "mul": "*",
                  "and": "&", "or": "|", "xor": "^"}[m]
            return self._cross(op,
                               self._expand_reg(instr.rs, site, stack),
                               self._expand_reg(instr.rt, site, stack))
        if m in ("fadd", "fsub", "fmul"):
            op = {"fadd": "+", "fsub": "-", "fmul": "*"}[m]
            return self._cross(op,
                               self._expand_reg(instr.rs, site, stack),
                               self._expand_reg(instr.rt, site, stack))
        if m in ("andi", "ori", "xori"):
            op = {"andi": "&", "ori": "|", "xori": "^"}[m]
            return [_binop(op, p, Const(instr.imm))
                    for p in self._expand_reg(instr.rs, site, stack)]
        if m in ("sll", "srl", "sra"):
            op = "<<" if m == "sll" else ">>"
            return [_binop(op, p, Const(instr.shamt))
                    for p in self._expand_reg(instr.rt, site, stack)]
        if m in ("sllv", "srlv", "srav"):
            op = "<<" if m == "sllv" else ">>"
            return self._cross(op,
                               self._expand_reg(instr.rt, site, stack),
                               self._expand_reg(instr.rs, site, stack))
        if m == "lui":
            return [Const((instr.imm << 16) & 0xFFFF_FFFF)]
        if instr.is_load:
            address_patterns = self._expand_reg(instr.rs, site, stack)
            out: list[APNode] = []
            for base in address_patterns:
                out.append(Deref(ap.add(base, Const(instr.imm))
                                 if instr.imm else base))
            return out
        if m in ("fneg", "fcvt", "ftrunc"):
            return self._expand_reg(instr.rs, site, stack)
        # Comparison results, division and anything else outside the
        # grammar become opaque leaves.
        return [Opaque()]

    def _cross(self, op: str, lefts: list[APNode],
               rights: list[APNode]) -> list[APNode]:
        out: list[APNode] = []
        for left in lefts:
            for right in rights:
                out.append(_binop(op, left, right))
                if len(out) >= self.max_patterns:
                    return out
        return out


def build_load_infos(program: Program,
                     block_map: Optional[BlockMap] = None,
                     max_patterns: int = MAX_PATTERNS,
                     max_depth: int = MAX_DEPTH,
                     slot_recurrence: bool = True) -> dict[int, LoadInfo]:
    """Address patterns for every static load in ``program``.

    Returns a mapping from load address to :class:`LoadInfo`, covering
    benchmark code and runtime library alike (the paper analyzes "the
    assembly code for the benchmark as well as any library functions").
    """
    block_map = block_map or BlockMap(program)
    infos: dict[int, LoadInfo] = {}
    for cfg in build_function_cfgs(program, block_map).values():
        builder = PatternBuilder(cfg, max_patterns=max_patterns,
                                 max_depth=max_depth,
                                 slot_recurrence=slot_recurrence)
        for block in cfg:
            for offset, instr in enumerate(block.instructions):
                if instr.is_load:
                    address = block.start + 4 * offset
                    infos[address] = builder.load_info(address)
    return infos
