"""Two-pass assembler: assembly text to a linked :class:`Program`.

Supports the directive and pseudo-instruction dialect emitted by the MiniC
compiler:

* sections ``.text`` / ``.data``; labels ``name:``;
* data directives ``.word``, ``.half``, ``.byte``, ``.float``, ``.space``,
  ``.asciiz``, ``.align``;
* function extents ``.ent name`` / ``.end name`` (recorded as debug info);
* pseudo-instructions ``nop``, ``move``, ``li``, ``la`` (gp-relative data
  address), ``lta`` (text address via lui/ori), ``b``, ``beqz``, ``bnez``,
  ``bge``, ``bgt``, ``ble``, ``blt``, ``neg``, ``not``, and direct-global
  ``lw/sw $rt, symbol`` forms that expand to ``%gp``-relative accesses;
* relocation operators ``%gp(sym)``, ``%hi(sym)``, ``%lo(sym)``.

Globals live in a ``$gp``-relative window (matching the MIPS small-data
convention the paper's H1 criterion keys on).
"""

from __future__ import annotations

import re
import struct
from dataclasses import dataclass
from typing import Optional

from repro.asm.program import DATA_BASE, GP_OFFSET, TEXT_BASE, Program
from repro.asm.symtab import SymbolTable
from repro.isa.instructions import SPECS, Format, Instruction
from repro.isa.registers import AT, GP, ZERO, register_number


class AssemblerError(Exception):
    """Raised on malformed assembly input."""

    def __init__(self, message: str, line: Optional[int] = None):
        self.line = line
        prefix = f"line {line}: " if line is not None else ""
        super().__init__(prefix + message)


@dataclass
class SymRef:
    """Unresolved symbolic operand with relocation kind and addend."""

    name: str
    kind: str = "abs"          # abs | gp | hi | lo
    addend: int = 0


_LABEL_RE = re.compile(r"^([A-Za-z_.$][\w.$]*):")
_MEM_RE = re.compile(r"^(.*)\(\s*(\$\w+)\s*\)$")
_RELOC_RE = re.compile(r"^%(gp|hi|lo)\((.+?)\)(?:([+-]\d+))?$")
_SYM_RE = re.compile(r"^([A-Za-z_.$][\w.$]*)(?:([+-]\d+))?$")


def _parse_value(token: str, line: int):
    """Parse an immediate operand: integer, relocation or symbol ref."""
    token = token.strip()
    match = _RELOC_RE.match(token)
    if match:
        kind, name, addend = match.groups()
        return SymRef(name, kind=kind, addend=int(addend or 0))
    try:
        return int(token, 0)
    except ValueError:
        pass
    match = _SYM_RE.match(token)
    if match:
        name, addend = match.groups()
        return SymRef(name, kind="abs", addend=int(addend or 0))
    raise AssemblerError(f"bad operand: {token!r}", line)


def _split_operands(rest: str) -> list[str]:
    """Split an operand string on commas not inside parens/quotes."""
    parts: list[str] = []
    depth = 0
    in_string = False
    current = ""
    for char in rest:
        if in_string:
            current += char
            if char == '"' and not current.endswith('\\"'):
                in_string = False
            continue
        if char == '"':
            in_string = True
            current += char
        elif char == "(":
            depth += 1
            current += char
        elif char == ")":
            depth -= 1
            current += char
        elif char == "," and depth == 0:
            parts.append(current.strip())
            current = ""
        else:
            current += char
    if current.strip():
        parts.append(current.strip())
    return parts


@dataclass
class _PendingInstr:
    """An instruction awaiting symbol resolution in pass 2."""

    mnemonic: str
    rd: Optional[int] = None
    rs: Optional[int] = None
    rt: Optional[int] = None
    imm: object = None          # int | SymRef | None
    shamt: Optional[int] = None
    line: int = 0
    label: Optional[str] = None


class Assembler:
    """Two-pass assembler producing a :class:`Program`."""

    def __init__(self, symtab: Optional[SymbolTable] = None):
        self.symtab = symtab or SymbolTable()
        self._pending: list[_PendingInstr] = []
        self._data = bytearray()
        self._symbols: dict[str, int] = {}
        self._section = "text"
        self._open_function: Optional[str] = None
        self._word_relocs: list[tuple[int, SymRef, int]] = []

    # ------------------------------------------------------------------
    def assemble(self, source: str) -> Program:
        for lineno, raw in enumerate(source.splitlines(), start=1):
            self._line(raw, lineno)
        if self._open_function is not None:
            raise AssemblerError(f"unterminated .ent {self._open_function}")
        instructions = [self._resolve(p) for p in self._pending]
        if "__start" in self._symbols:
            entry = self._symbols["__start"]
        elif "main" in self._symbols:
            entry = self._symbols["main"]
        else:
            entry = TEXT_BASE
        return Program(
            instructions=instructions,
            data=self._data,
            symbols=dict(self._symbols),
            symtab=self.symtab,
            entry=entry,
            source=source,
        )

    # -- pass 1 --------------------------------------------------------
    def _here(self) -> int:
        if self._section == "text":
            return TEXT_BASE + 4 * len(self._pending)
        return DATA_BASE + len(self._data)

    def _define(self, name: str, line: int) -> None:
        if name in self._symbols:
            raise AssemblerError(f"duplicate label {name!r}", line)
        self._symbols[name] = self._here()

    def _line(self, raw: str, lineno: int) -> None:
        text = raw.split("#", 1)[0].strip()
        while text:
            match = _LABEL_RE.match(text)
            if not match:
                break
            self._define(match.group(1), lineno)
            text = text[match.end():].strip()
        if not text:
            return
        if text.startswith("."):
            self._directive(text, lineno)
        else:
            self._instruction(text, lineno)

    # -- directives ------------------------------------------------------
    def _directive(self, text: str, line: int) -> None:
        parts = text.split(None, 1)
        name = parts[0]
        rest = parts[1] if len(parts) > 1 else ""
        if name == ".text":
            self._section = "text"
        elif name == ".data":
            self._section = "data"
        elif name == ".globl":
            pass  # all symbols are visible; kept for dialect compatibility
        elif name == ".ent":
            func = rest.strip()
            self._open_function = func
            info = self.symtab.functions.get(func)
            if info is None:
                from repro.asm.symtab import FunctionInfo
                info = FunctionInfo(name=func)
                self.symtab.add_function(info)
            info.start = self._here()
        elif name == ".end":
            func = rest.strip()
            if self._open_function != func:
                raise AssemblerError(
                    f".end {func} does not match .ent {self._open_function}",
                    line)
            self.symtab.functions[func].end = self._here()
            self._open_function = None
        elif name == ".align":
            self._align(1 << int(rest, 0))
        elif name == ".space":
            self._data.extend(b"\0" * int(rest, 0))
        elif name == ".word":
            self._align(4)
            for token in _split_operands(rest):
                value = _parse_value(token, line)
                if isinstance(value, SymRef):
                    self._data_reloc(value, line)
                else:
                    if not -0x8000_0000 <= value <= 0xFFFF_FFFF:
                        raise AssemblerError(
                            f".word value out of range: {value}", line)
                    self._data.extend(
                        struct.pack("<I", value & 0xFFFF_FFFF))
        elif name == ".half":
            self._align(2)
            for token in _split_operands(rest):
                self._data.extend(struct.pack("<h", int(token, 0)))
        elif name == ".byte":
            for token in _split_operands(rest):
                self._data.extend(struct.pack("<b", int(token, 0)))
        elif name == ".float":
            self._align(4)
            for token in _split_operands(rest):
                self._data.extend(struct.pack("<f", float(token)))
        elif name == ".asciiz":
            string = rest.strip()
            if not (string.startswith('"') and string.endswith('"')):
                raise AssemblerError("malformed .asciiz string", line)
            decoded = string[1:-1].encode().decode("unicode_escape")
            self._data.extend(decoded.encode("latin-1") + b"\0")
        else:
            raise AssemblerError(f"unknown directive {name}", line)

    def _align(self, boundary: int) -> None:
        while len(self._data) % boundary:
            self._data.append(0)

    def _data_reloc(self, ref: SymRef, line: int) -> None:
        # Data words referencing symbols are patched in pass 2.
        self._word_relocs.append((len(self._data), ref, line))
        self._data.extend(b"\0\0\0\0")

    # -- instructions ------------------------------------------------------
    def _emit(self, mnemonic: str, line: int, **fields) -> None:
        self._pending.append(_PendingInstr(mnemonic, line=line, **fields))

    def _instruction(self, text: str, line: int) -> None:
        if self._section != "text":
            raise AssemblerError("instruction outside .text", line)
        parts = text.split(None, 1)
        mnemonic = parts[0]
        operands = _split_operands(parts[1]) if len(parts) > 1 else []
        if mnemonic in _PSEUDOS:
            _PSEUDOS[mnemonic](self, operands, line)
            return
        spec = SPECS.get(mnemonic)
        if spec is None:
            raise AssemblerError(f"unknown mnemonic {mnemonic!r}", line)
        fmt = spec.fmt
        try:
            if fmt is Format.R3:
                rd, rs, rt = (register_number(x) for x in operands)
                self._emit(mnemonic, line, rd=rd, rs=rs, rt=rt)
            elif fmt is Format.R2:
                rd, rs = (register_number(x) for x in operands)
                self._emit(mnemonic, line, rd=rd, rs=rs)
            elif fmt is Format.SHIFT:
                rd, rt = register_number(operands[0]), register_number(operands[1])
                self._emit(mnemonic, line, rd=rd, rt=rt,
                           shamt=int(operands[2], 0))
            elif fmt is Format.I_ARITH:
                rt, rs = register_number(operands[0]), register_number(operands[1])
                self._emit(mnemonic, line, rt=rt, rs=rs,
                           imm=_parse_value(operands[2], line))
            elif fmt is Format.LUI:
                self._emit(mnemonic, line, rt=register_number(operands[0]),
                           imm=_parse_value(operands[1], line))
            elif fmt is Format.MEM:
                self._mem(mnemonic, operands, line)
            elif fmt is Format.BRANCH2:
                rs, rt = register_number(operands[0]), register_number(operands[1])
                self._emit(mnemonic, line, rs=rs, rt=rt,
                           imm=_parse_value(operands[2], line))
            elif fmt is Format.BRANCH1:
                self._emit(mnemonic, line, rs=register_number(operands[0]),
                           imm=_parse_value(operands[1], line))
            elif fmt is Format.JUMP:
                self._emit(mnemonic, line, imm=_parse_value(operands[0], line))
            elif fmt is Format.JR:
                self._emit(mnemonic, line, rs=register_number(operands[0]))
            elif fmt is Format.JALR:
                rd, rs = (register_number(x) for x in operands)
                self._emit(mnemonic, line, rd=rd, rs=rs)
            elif fmt is Format.BARE:
                self._emit(mnemonic, line)
        except (IndexError, ValueError) as exc:
            raise AssemblerError(f"bad operands for {mnemonic}: {exc}", line)

    def _mem(self, mnemonic: str, operands: list[str], line: int) -> None:
        if mnemonic == "pref":
            # prefetch has no destination: pref off($rs)
            rt, addr = ZERO, operands[0]
        else:
            rt = register_number(operands[0])
            addr = operands[1]
        match = _MEM_RE.match(addr)
        if match:
            offset_text, base = match.groups()
            offset = _parse_value(offset_text or "0", line)
            self._emit(mnemonic, line, rt=rt,
                       rs=register_number(base), imm=offset)
        else:
            # Direct global: expands to a gp-relative access.
            ref = _parse_value(addr, line)
            if not isinstance(ref, SymRef):
                raise AssemblerError(f"bad address operand {addr!r}", line)
            ref.kind = "gp"
            self._emit(mnemonic, line, rt=rt, rs=GP, imm=ref)

    # -- pass 2 --------------------------------------------------------
    def _lookup(self, ref: SymRef, line: int) -> int:
        if ref.name not in self._symbols:
            raise AssemblerError(f"undefined symbol {ref.name!r}", line)
        value = self._symbols[ref.name] + ref.addend
        if ref.kind == "gp":
            return value - (DATA_BASE + GP_OFFSET)
        if ref.kind == "hi":
            return (value >> 16) & 0xFFFF
        if ref.kind == "lo":
            return value & 0xFFFF
        return value

    def _resolve(self, pending: _PendingInstr) -> Instruction:
        imm = pending.imm
        label = pending.label
        if isinstance(imm, SymRef):
            if imm.kind == "abs":
                label = imm.name
            imm = self._lookup(imm, pending.line)
        return Instruction(
            mnemonic=pending.mnemonic, rd=pending.rd, rs=pending.rs,
            rt=pending.rt, imm=imm, shamt=pending.shamt, label=label,
            source_line=pending.line,
        )

# -- pseudo-instruction expanders ------------------------------------------

def _pseudo_nop(asm: Assembler, ops: list[str], line: int) -> None:
    asm._emit("sll", line, rd=ZERO, rt=ZERO, shamt=0)


def _pseudo_move(asm: Assembler, ops: list[str], line: int) -> None:
    rd, rs = (register_number(x) for x in ops)
    asm._emit("addu", line, rd=rd, rs=rs, rt=ZERO)


def _pseudo_li(asm: Assembler, ops: list[str], line: int) -> None:
    rd = register_number(ops[0])
    value = int(ops[1], 0)
    if -0x8000 <= value <= 0x7FFF:
        asm._emit("addiu", line, rt=rd, rs=ZERO, imm=value)
    elif 0 <= value <= 0xFFFF:
        asm._emit("ori", line, rt=rd, rs=ZERO, imm=value)
    else:
        word = value & 0xFFFF_FFFF
        asm._emit("lui", line, rt=rd, imm=(word >> 16) & 0xFFFF)
        if word & 0xFFFF:
            asm._emit("ori", line, rt=rd, rs=rd, imm=word & 0xFFFF)


def _pseudo_la(asm: Assembler, ops: list[str], line: int) -> None:
    """Load the address of a data symbol, gp-relative (small data model)."""
    rd = register_number(ops[0])
    ref = _parse_value(ops[1], line)
    if not isinstance(ref, SymRef):
        raise AssemblerError("la needs a symbol operand", line)
    ref.kind = "gp"
    asm._emit("addiu", line, rt=rd, rs=GP, imm=ref)


def _pseudo_lta(asm: Assembler, ops: list[str], line: int) -> None:
    """Load a text (function) address via lui/ori."""
    rd = register_number(ops[0])
    ref = _parse_value(ops[1], line)
    if not isinstance(ref, SymRef):
        raise AssemblerError("lta needs a symbol operand", line)
    hi = SymRef(ref.name, kind="hi", addend=ref.addend)
    lo = SymRef(ref.name, kind="lo", addend=ref.addend)
    asm._emit("lui", line, rt=rd, imm=hi)
    asm._emit("ori", line, rt=rd, rs=rd, imm=lo)


def _pseudo_b(asm: Assembler, ops: list[str], line: int) -> None:
    asm._emit("beq", line, rs=ZERO, rt=ZERO, imm=_parse_value(ops[0], line))


def _pseudo_beqz(asm: Assembler, ops: list[str], line: int) -> None:
    asm._emit("beq", line, rs=register_number(ops[0]), rt=ZERO,
              imm=_parse_value(ops[1], line))


def _pseudo_bnez(asm: Assembler, ops: list[str], line: int) -> None:
    asm._emit("bne", line, rs=register_number(ops[0]), rt=ZERO,
              imm=_parse_value(ops[1], line))


def _compare_branch(flip: bool, taken_if_set: bool):
    def expand(asm: Assembler, ops: list[str], line: int) -> None:
        rs, rt = register_number(ops[0]), register_number(ops[1])
        target = _parse_value(ops[2], line)
        if flip:
            rs, rt = rt, rs
        asm._emit("slt", line, rd=AT, rs=rs, rt=rt)
        branch = "bne" if taken_if_set else "beq"
        asm._emit(branch, line, rs=AT, rt=ZERO, imm=target)
    return expand


def _pseudo_neg(asm: Assembler, ops: list[str], line: int) -> None:
    rd, rs = (register_number(x) for x in ops)
    asm._emit("subu", line, rd=rd, rs=ZERO, rt=rs)


def _pseudo_not(asm: Assembler, ops: list[str], line: int) -> None:
    rd, rs = (register_number(x) for x in ops)
    asm._emit("nor", line, rd=rd, rs=rs, rt=ZERO)


_PSEUDOS = {
    "nop": _pseudo_nop,
    "move": _pseudo_move,
    "li": _pseudo_li,
    "la": _pseudo_la,
    "lta": _pseudo_lta,
    "b": _pseudo_b,
    "beqz": _pseudo_beqz,
    "bnez": _pseudo_bnez,
    "blt": _compare_branch(flip=False, taken_if_set=True),
    "bge": _compare_branch(flip=False, taken_if_set=False),
    "bgt": _compare_branch(flip=True, taken_if_set=True),
    "ble": _compare_branch(flip=True, taken_if_set=False),
    "neg": _pseudo_neg,
    "not": _pseudo_not,
}


def assemble(source: str, symtab: Optional[SymbolTable] = None) -> Program:
    """Assemble ``source`` into a :class:`Program`."""
    assembler = Assembler(symtab=symtab)
    program = assembler.assemble(source)
    for offset, ref, line in assembler._word_relocs:
        value = assembler._lookup(ref, line)
        program.data[offset:offset + 4] = struct.pack("<I", value & 0xFFFFFFFF)
    return program
