"""Typed symbol table attached to assembled programs.

The paper's static BDH baseline (Section 8.5) performs "type analysis of
the MIPS assembly code ... with the help of the symbol table": each function
entry lists variables, their types and their stack offsets, and global
symbols carry types too.  This module is the debug-info substrate that makes
that analysis possible; the MiniC compiler populates it during codegen.

Types are deliberately minimal — just enough structure to answer the BDH
questions: is an access a scalar, an array element or a struct field, and
is the loaded value a pointer?
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Optional


@dataclass(frozen=True)
class TypeDesc:
    """Shape of a source-level type, as recorded in debug info.

    ``kind`` is one of ``int``, ``float``, ``char``, ``pointer``,
    ``array`` or ``struct``.
    """

    kind: str
    size: int
    elem: Optional["TypeDesc"] = None            # arrays, pointers
    count: int = 0                               # arrays
    fields: tuple["FieldDesc", ...] = ()         # structs
    struct_name: str = ""

    @property
    def is_pointer(self) -> bool:
        return self.kind == "pointer"

    @property
    def is_array(self) -> bool:
        return self.kind == "array"

    @property
    def is_struct(self) -> bool:
        return self.kind == "struct"

    def field_at(self, offset: int) -> Optional["FieldDesc"]:
        """The struct field covering byte ``offset``, if this is a struct."""
        for fld in self.fields:
            if fld.offset <= offset < fld.offset + fld.type.size:
                return fld
        return None


@dataclass(frozen=True)
class FieldDesc:
    name: str
    offset: int
    type: TypeDesc


INT = TypeDesc("int", 4)
FLOAT = TypeDesc("float", 4)
CHAR = TypeDesc("char", 1)


def pointer_to(elem: TypeDesc) -> TypeDesc:
    return TypeDesc("pointer", 4, elem=elem)


def array_of(elem: TypeDesc, count: int) -> TypeDesc:
    return TypeDesc("array", elem.size * count, elem=elem, count=count)


def struct_of(name: str, fields: Iterable[tuple[str, TypeDesc]]) -> TypeDesc:
    descs = []
    offset = 0
    for fname, ftype in fields:
        align = 4 if ftype.size >= 4 or ftype.kind in ("int", "float",
                                                       "pointer") else 1
        offset = (offset + align - 1) & ~(align - 1)
        descs.append(FieldDesc(fname, offset, ftype))
        offset += ftype.size
    total = (offset + 3) & ~3
    return TypeDesc("struct", total, fields=tuple(descs), struct_name=name)


@dataclass
class VariableInfo:
    """One variable: a global (gp-region) or a function-local (stack)."""

    name: str
    type: TypeDesc
    region: str                 # "global" or "stack"
    offset: int                 # gp-relative (global) or sp-relative (stack)
    function: Optional[str] = None   # owning function for stack variables


@dataclass
class FunctionInfo:
    """Debug record for one function: extent and frame layout."""

    name: str
    start: int = 0              # first instruction address
    end: int = 0                # address one past the last instruction
    frame_size: int = 0
    locals: list[VariableInfo] = field(default_factory=list)
    param_types: list[TypeDesc] = field(default_factory=list)
    return_type: Optional[TypeDesc] = None

    def local_at(self, sp_offset: int) -> Optional[VariableInfo]:
        """The local variable whose storage covers ``sp_offset``."""
        for var in self.locals:
            if var.offset <= sp_offset < var.offset + var.type.size:
                return var
        return None


@dataclass
class SymbolTable:
    """Typed program-level debug information."""

    globals: dict[str, VariableInfo] = field(default_factory=dict)
    functions: dict[str, FunctionInfo] = field(default_factory=dict)
    structs: dict[str, TypeDesc] = field(default_factory=dict)

    def add_global(self, info: VariableInfo) -> None:
        self.globals[info.name] = info

    def add_function(self, info: FunctionInfo) -> None:
        self.functions[info.name] = info

    def global_at(self, gp_offset: int) -> Optional[VariableInfo]:
        """The global variable whose storage covers ``gp_offset``."""
        for var in self.globals.values():
            if var.offset <= gp_offset < var.offset + var.type.size:
                return var
        return None

    def function_containing(self, address: int) -> Optional[FunctionInfo]:
        for info in self.functions.values():
            if info.start <= address < info.end:
                return info
        return None
