"""Disassembler: binary words or Program objects back to readable text.

Mirrors the paper's use of ``objdump``: the post-compilation analysis
consumes disassembly rather than compiler internals.  ``disassemble``
renders a :class:`Program` with addresses, encoded words and symbolic
labels; ``decode_image`` rebuilds instruction objects from raw words (the
encode/decode round trip the tests verify).
"""

from __future__ import annotations

from repro.asm.program import Program
from repro.isa.encoding import decode, encode
from repro.isa.instructions import Format, Instruction


def encode_program(program: Program) -> list[int]:
    """Binary text-segment image: one 32-bit word per instruction."""
    return [encode(instr, program.address_of(index))
            for index, instr in enumerate(program.instructions)]


def decode_image(words: list[int], text_base: int) -> list[Instruction]:
    """Decode a text-segment image back into instructions."""
    return [decode(word, text_base + 4 * index)
            for index, word in enumerate(words)]


def _target_text(program: Program, instr: Instruction) -> str:
    if instr.imm is None:
        return ""
    labels = program.labels_at(instr.imm)
    return f" <{labels[0]}>" if labels else ""


def disassemble(program: Program, with_encoding: bool = True) -> str:
    """Objdump-style listing of the whole text segment."""
    lines: list[str] = []
    for index, instr in enumerate(program.instructions):
        address = program.address_of(index)
        for label in program.labels_at(address):
            lines.append(f"{address:08x} <{label}>:")
        word = encode(instr, address) if with_encoding else None
        text = instr.text()
        if instr.is_control() and instr.spec.fmt in (
                Format.BRANCH1, Format.BRANCH2, Format.JUMP):
            text += _target_text(program, instr)
        if word is not None:
            lines.append(f"{address:08x}:  {word:08x}    {text}")
        else:
            lines.append(f"{address:08x}:    {text}")
    return "\n".join(lines)


def roundtrip(program: Program) -> list[Instruction]:
    """encode -> decode of every instruction (used by property tests)."""
    return decode_image(encode_program(program), program.text_base)
