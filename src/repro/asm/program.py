"""Assembled program image.

A :class:`Program` is the unit everything downstream consumes: the machine
simulator executes it, the disassembler prints it, and the static analyses
(CFG reconstruction, dataflow, address patterns) read it the way the paper
reads ``objdump`` output.
"""

from __future__ import annotations

import bisect
from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.asm.symtab import SymbolTable
from repro.isa.instructions import Instruction

TEXT_BASE = 0x0040_0000
DATA_BASE = 0x1000_0000
GP_OFFSET = 0x8000            # $gp points at data_base + 0x8000
STACK_TOP = 0x7FFF_F000
HEAP_ALIGN = 0x1000


@dataclass
class Program:
    """A fully linked program: text, data, symbols and debug info."""

    instructions: list[Instruction]
    data: bytearray
    symbols: dict[str, int]
    symtab: SymbolTable = field(default_factory=SymbolTable)
    text_base: int = TEXT_BASE
    data_base: int = DATA_BASE
    entry: int = TEXT_BASE
    source: Optional[str] = None

    def __post_init__(self) -> None:
        self._addr_to_label: dict[int, list[str]] = {}
        for name, addr in self.symbols.items():
            self._addr_to_label.setdefault(addr, []).append(name)
        self._func_starts = sorted(
            (info.start, name) for name, info in self.symtab.functions.items()
        )

    # -- geometry ------------------------------------------------------
    @property
    def gp_value(self) -> int:
        return self.data_base + GP_OFFSET

    @property
    def text_end(self) -> int:
        return self.text_base + 4 * len(self.instructions)

    @property
    def data_end(self) -> int:
        return self.data_base + len(self.data)

    @property
    def heap_base(self) -> int:
        return (self.data_end + HEAP_ALIGN - 1) & ~(HEAP_ALIGN - 1)

    # -- addressing ------------------------------------------------------
    def address_of(self, index: int) -> int:
        return self.text_base + 4 * index

    def index_of(self, address: int) -> int:
        if address % 4 != 0 or not self.text_base <= address < self.text_end:
            raise ValueError(f"not a text address: {address:#x}")
        return (address - self.text_base) // 4

    def instruction_at(self, address: int) -> Instruction:
        return self.instructions[self.index_of(address)]

    def addresses(self) -> Iterator[int]:
        return iter(range(self.text_base, self.text_end, 4))

    # -- symbols ------------------------------------------------------
    def labels_at(self, address: int) -> list[str]:
        return self._addr_to_label.get(address, [])

    def function_containing(self, address: int) -> Optional[str]:
        """Name of the function whose body contains ``address``."""
        info = self.symtab.function_containing(address)
        if info is not None:
            return info.name
        if not self._func_starts:
            return None
        starts = [s for s, _ in self._func_starts]
        pos = bisect.bisect_right(starts, address) - 1
        if pos < 0:
            return None
        return self._func_starts[pos][1]

    # -- instruction queries --------------------------------------------
    def loads(self) -> Iterator[tuple[int, Instruction]]:
        """Yield ``(address, instruction)`` for every static load."""
        for index, instr in enumerate(self.instructions):
            if instr.is_load:
                yield self.address_of(index), instr

    def load_addresses(self) -> list[int]:
        return [addr for addr, _ in self.loads()]

    def num_loads(self) -> int:
        """|Lambda|: the number of static load instructions."""
        return sum(1 for instr in self.instructions if instr.is_load)
