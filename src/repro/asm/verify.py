"""Structural verification of assembled programs.

A lightweight "machine-code lint" run over a :class:`Program`, catching
the classes of code-generation bugs that otherwise surface as bizarre
runtime behaviour:

* control transfers to addresses that are not instruction boundaries,
  or conditional branches that leave their function;
* ``jal`` targets that are not function entry points;
* functions whose last instruction can fall through into the next
  function;
* unbalanced stack adjustment between a function's prologue and its
  ``jr $ra`` exits;
* reads of caller-saved registers whose value can only come from
  function entry (maybe-uninitialized temporaries), found with the same
  reaching-definitions analysis the pattern builder uses.

``verify_program`` returns a list of :class:`Issue`; an empty list means
the image passes every check.  The test suite runs it over every
compiled workload in both optimization modes.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.asm.program import Program
from repro.cfg.blocks import BlockMap
from repro.cfg.graph import build_function_cfgs
from repro.dataflow.reachdefs import ENTRY, ReachingDefinitions
from repro.isa.instructions import Format, branch_target
from repro.isa.registers import (
    AT, GP, RA, SP, TEMP_REGISTERS, V0, V1, register_name,
)

#: Registers that carry no value at function entry under the ABI.
_UNDEFINED_AT_ENTRY = frozenset(TEMP_REGISTERS) | {AT, V0, V1}


@dataclass(frozen=True)
class Issue:
    """One verification finding."""

    kind: str          # e.g. "bad-branch-target", "uninitialized-read"
    address: int
    function: str
    message: str

    def __str__(self) -> str:
        return (f"{self.address:#010x} [{self.function}] "
                f"{self.kind}: {self.message}")


def verify_program(program: Program,
                   check_uninitialized: bool = True) -> list[Issue]:
    """Run every structural check; return all findings."""
    issues: list[Issue] = []
    block_map = BlockMap(program)
    cfgs = build_function_cfgs(program, block_map)
    function_starts = {
        info.start for info in program.symtab.functions.values()
    }

    issues.extend(_check_control_targets(program, function_starts))
    issues.extend(_check_fallthrough(program))
    issues.extend(_check_stack_balance(program))
    if check_uninitialized:
        for cfg in cfgs.values():
            issues.extend(_check_uninitialized(program, cfg))
    return issues


# ---------------------------------------------------------------------------
def _function_of(program: Program, address: int) -> str:
    return program.function_containing(address) or "?"


def _check_control_targets(program: Program,
                           function_starts: set[int]) -> list[Issue]:
    issues: list[Issue] = []
    for index, instr in enumerate(program.instructions):
        address = program.address_of(index)
        target = branch_target(instr)
        if target is None:
            continue
        function = _function_of(program, address)
        if target % 4 != 0 or not (program.text_base <= target
                                   < program.text_end):
            issues.append(Issue(
                "bad-control-target", address, function,
                f"{instr.text()} targets {target:#x} outside text"))
            continue
        if instr.is_branch:
            if _function_of(program, target) != function:
                issues.append(Issue(
                    "branch-leaves-function", address, function,
                    f"{instr.text()} jumps into "
                    f"{_function_of(program, target)}"))
        elif instr.mnemonic == "jal":
            if target not in function_starts:
                issues.append(Issue(
                    "call-into-body", address, function,
                    f"jal targets {target:#x}, not a function entry"))
    return issues


def _check_fallthrough(program: Program) -> list[Issue]:
    issues: list[Issue] = []
    for name, info in program.symtab.functions.items():
        if info.end <= info.start or info.end > program.text_end:
            continue
        last = program.instruction_at(info.end - 4)
        terminal = (last.spec.fmt in (Format.JR, Format.JUMP)
                    and not last.is_call) or last.mnemonic == "syscall"
        # an unconditional beq $zero,$zero (pseudo `b`) also terminates
        if last.mnemonic == "beq" and last.rs == 0 and last.rt == 0:
            terminal = True
        if not terminal:
            issues.append(Issue(
                "fallthrough-off-function", info.end - 4, name,
                f"last instruction {last.text()!r} can fall through"))
    return issues


def _check_stack_balance(program: Program) -> list[Issue]:
    """Prologue sp decrement must match the adjustment before jr $ra."""
    issues: list[Issue] = []
    for name, info in program.symtab.functions.items():
        if info.end <= info.start:
            continue
        first = program.instruction_at(info.start)
        frame = 0
        if first.mnemonic == "addiu" and first.rt == SP \
                and first.rs == SP and first.imm is not None \
                and first.imm < 0:
            frame = -first.imm
        if frame == 0:
            continue        # leaf with no frame: nothing to balance
        for address in range(info.start, info.end, 4):
            instr = program.instruction_at(address)
            if instr.spec.fmt is Format.JR and instr.rs == RA:
                # scan backwards for the sp restore in this block
                restored = False
                back = address - 4
                while back >= info.start and address - back <= 40:
                    prev = program.instruction_at(back)
                    if prev.mnemonic == "addiu" and prev.rt == SP \
                            and prev.rs == SP and prev.imm == frame:
                        restored = True
                        break
                    if prev.is_control():
                        break
                    back -= 4
                if not restored:
                    issues.append(Issue(
                        "unbalanced-stack", address, name,
                        f"jr $ra without restoring frame of {frame} "
                        f"bytes"))
    return issues


def _check_uninitialized(program: Program, cfg) -> list[Issue]:
    issues: list[Issue] = []
    rd = ReachingDefinitions(cfg)
    for block in cfg:
        for offset, instr in enumerate(block.instructions):
            address = block.start + 4 * offset
            for reg in instr.uses():
                if reg not in _UNDEFINED_AT_ENTRY:
                    continue
                reaching = rd.reaching(address, reg)
                if reaching == {ENTRY}:
                    issues.append(Issue(
                        "uninitialized-read", address, cfg.name,
                        f"{instr.text()} reads {register_name(reg)} "
                        f"which has no definition in {cfg.name}"))
    return issues
