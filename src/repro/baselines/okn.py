"""The OKN baseline (Ozawa, Kimura and Nishizaki, MICRO 1995).

Three simple heuristics over a load's address computation: does it involve
a **pointer dereference**, a **strided reference**, or neither?  Loads in
the first two categories are predicted delinquent.  The paper reports this
catching ~90% of misses while flagging 30-60% of all static loads — the
comparison point Table 12 beats on precision.

Mapped onto our machinery:

* *pointer dereference* — the address pattern contains a dereference (the
  address depends on a value previously loaded from memory);
* *strided* — the address pattern is recurrent (advances as a function of
  itself across loop iterations);
* *chain inclusion* — OKN was built to drive preloading, which tags the
  whole source construct: the loads producing the address (the base
  pointer, the index) are selected together with the dereference itself.
  In unoptimized code every ``p->f``/``A[i]`` construct therefore selects
  its stack reloads too, which is what pushes OKN's precision measure to
  the ~50% range the paper reports.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.asm.program import Program
from repro.dataflow.addrflow import AddressFlow
from repro.patterns.builder import LoadInfo

KIND_POINTER = "pointer"
KIND_STRIDED = "strided"
KIND_CHAIN = "chain"
KIND_OTHER = "other"

DELINQUENT_KINDS = frozenset((KIND_POINTER, KIND_STRIDED, KIND_CHAIN))


def classify_load(info: LoadInfo) -> str:
    """Pattern-level OKN category (pointer wins over strided)."""
    if any(f.deref_count > 0 for f in info.features):
        return KIND_POINTER
    if any(f.has_recurrence for f in info.features):
        return KIND_STRIDED
    return KIND_OTHER


@dataclass
class OKNResult:
    categories: dict[int, str]

    @property
    def delinquent_set(self) -> set[int]:
        return {address for address, kind in self.categories.items()
                if kind in DELINQUENT_KINDS}

    def counts(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for kind in self.categories.values():
            histogram[kind] = histogram.get(kind, 0) + 1
        return histogram


def classify(load_infos: Mapping[int, LoadInfo],
             program: Optional[Program] = None,
             include_chain: bool = True) -> OKNResult:
    """OKN classification; pass ``program`` to enable chain inclusion
    (``include_chain=False`` gives the pattern-only ablation)."""
    categories = {address: classify_load(info)
                  for address, info in load_infos.items()}
    if include_chain and program is not None:
        flow = AddressFlow(program)
        selected = {a for a, k in categories.items()
                    if k in (KIND_POINTER, KIND_STRIDED)}
        for source in flow.chain_members(selected):
            if categories.get(source) == KIND_OTHER:
                categories[source] = KIND_CHAIN
    return OKNResult(categories)
