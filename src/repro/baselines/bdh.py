"""Static BDH baseline (Burtscher, Diwan, Hauswirth, PLDI 2002).

BDH classifies each load by a three-letter string: memory **region**
(Stack / Heap / Global), reference **kind** (Scalar / Array element /
struct Field) and loaded-value **type** (Pointer / Non-pointer).  The
suggested delinquent classes are GAN, HSN, HFN, HAN, HFP and HAP.

The original work classified loads over an execution trace; the paper
re-implements it *statically* (Section 8.5) using symbol-table type
analysis plus two inferences we reproduce:

* value propagation marks loads whose address traces back to a
  ``malloc``/``calloc`` result (a ``reg_ret`` base in the address pattern)
  as heap references;
* "if a value loaded from memory is used as part of the address in a
  subsequent load, the first load is assumed to be a pointer reference".

As the paper notes, the region of memory is "not always discernable by a
compiler" — pointer-typed variables are assumed to point into the heap,
which is the same approximation the authors accept.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

from repro.asm.program import Program
from repro.asm.symtab import SymbolTable, TypeDesc, VariableInfo
from repro.cfg.blocks import BlockMap
from repro.dataflow.addrflow import AddressFlow
from repro.patterns.ap import APNode, Base, BinOp, Const, Deref
from repro.patterns.builder import LoadInfo
from repro.patterns.recurrence import slot_of_pattern

#: The class union the BDH authors recommend flagging as delinquent.
DELINQUENT_CLASSES = frozenset(("GAN", "HSN", "HFN", "HAN", "HFP", "HAP"))


@dataclass
class _Terms:
    """A pattern's top-level additive decomposition."""

    const: int = 0
    bases: list[str] = None
    derefs: list[Deref] = None
    has_var_index: bool = False

    def __post_init__(self):
        if self.bases is None:
            self.bases = []
        if self.derefs is None:
            self.derefs = []


def _split(pattern: APNode) -> _Terms:
    terms = _Terms()

    def walk(node: APNode) -> None:
        if isinstance(node, Const):
            terms.const += node.value
        elif isinstance(node, Base):
            terms.bases.append(node.kind)
        elif isinstance(node, Deref):
            terms.derefs.append(node)
        elif isinstance(node, BinOp) and node.op == "+":
            walk(node.left)
            walk(node.right)
        else:
            terms.has_var_index = True

    walk(pattern)
    return terms


def _contains_ret(node: APNode) -> bool:
    if isinstance(node, Base):
        return node.kind == "reg_ret"
    if isinstance(node, BinOp):
        return _contains_ret(node.left) or _contains_ret(node.right)
    if isinstance(node, Deref):
        return _contains_ret(node.address)
    return False


class TypeResolver:
    """Answers "what source-level location does this address name?"."""

    def __init__(self, symtab: SymbolTable):
        self.symtab = symtab

    def variable_for_slot(self, function: str,
                          slot: tuple[str, int]) -> Optional[VariableInfo]:
        kind, offset = slot
        if kind == "gp":
            return self.symtab.global_at(offset)
        info = self.symtab.functions.get(function)
        if info is None:
            return None
        return info.local_at(offset)

    def resolve_struct(self, desc: TypeDesc) -> Optional[TypeDesc]:
        if desc.kind == "struct_ref":
            return self.symtab.structs.get(desc.struct_name)
        if desc.kind == "struct":
            return desc
        return None

    def location_type(self, var_type: TypeDesc,
                      offset: int) -> tuple[Optional[TypeDesc], str]:
        """(type at byte ``offset`` inside a value of ``var_type``, kind
        letter) where kind is S/A/F."""
        desc = var_type
        kind = "S"
        for _ in range(8):  # bounded drill-down through nesting
            if desc.kind == "array":
                kind = "A"
                if desc.elem is None or desc.elem.size == 0:
                    return None, kind
                offset %= max(desc.elem.size, 1)
                desc = desc.elem
                continue
            struct = self.resolve_struct(desc)
            if struct is not None and struct.fields:
                fld = struct.field_at(offset)
                if fld is None:
                    return None, "F"
                kind = "F"
                offset -= fld.offset
                desc = fld.type
                continue
            return desc, kind
        return desc, kind


@dataclass
class BDHResult:
    classes: dict[int, str]           # load address -> e.g. "HFP"
    chain: set[int] = None            # address-chain members also selected

    def __post_init__(self):
        if self.chain is None:
            self.chain = set()

    @property
    def delinquent_set(self) -> set[int]:
        direct = {address for address, name in self.classes.items()
                  if name in DELINQUENT_CLASSES}
        return direct | self.chain

    def counts(self) -> dict[str, int]:
        histogram: dict[str, int] = {}
        for name in self.classes.values():
            histogram[name] = histogram.get(name, 0) + 1
        return histogram


class BDHClassifier:
    """Static BDH classification over address patterns + symbol table."""

    def __init__(self, program: Program,
                 block_map: Optional[BlockMap] = None,
                 include_chain: bool = True):
        self.program = program
        self.resolver = TypeResolver(program.symtab)
        self.flow = AddressFlow(program, block_map)
        self.include_chain = include_chain

    # ------------------------------------------------------------------
    def classify(self, load_infos: Mapping[int, LoadInfo]) -> BDHResult:
        classes: dict[int, str] = {}
        for address, info in load_infos.items():
            classes[address] = self.classify_load(info)
        chain: set[int] = set()
        if self.include_chain:
            # Selection built for prefetching tags the address chain of
            # every selected reference (see repro.dataflow.addrflow).
            selected = {a for a, n in classes.items()
                        if n in DELINQUENT_CLASSES}
            chain = {a for a in self.flow.chain_members(selected)
                     if a in load_infos and a not in selected}
        return BDHResult(classes, chain)

    def classify_load(self, info: LoadInfo) -> str:
        """Class of the load; with several patterns the first pattern
        that yields a delinquent class wins (any-path semantics)."""
        result = "SSN"
        for pattern in info.patterns:
            name = self._classify_pattern(pattern, info)
            result = name
            if name in DELINQUENT_CLASSES:
                return name
        return result

    # ------------------------------------------------------------------
    def _classify_pattern(self, pattern: APNode, info: LoadInfo) -> str:
        terms = _split(pattern)
        region = self._region(pattern, terms, info)
        kind, loc_type = self._kind_and_type(terms, info)
        if loc_type is None:
            pointer = info.address in self.flow.address_source_loads
        else:
            pointer = loc_type.kind == "pointer" \
                or info.address in self.flow.address_source_loads
        return region + kind + ("P" if pointer else "N")

    def _region(self, pattern: APNode, terms: _Terms,
                info: LoadInfo) -> str:
        if _contains_ret(pattern):
            return "H"        # value-propagated from malloc/calloc
        for deref in terms.derefs:
            slot = slot_of_pattern(deref.address)
            if slot is None:
                return "H"    # address from an untracked loaded value
            var = self.resolver.variable_for_slot(info.function, slot)
            if var is None or var.type.kind == "pointer":
                return "H"
        if terms.derefs:
            return "H"
        if "reg_param" in terms.bases:
            return "H"        # pointer parameters: provenance unknown
        if "gp" in terms.bases:
            return "G"
        return "S"

    def _kind_and_type(self, terms: _Terms, info: LoadInfo
                       ) -> tuple[str, Optional[TypeDesc]]:
        resolver = self.resolver
        if terms.derefs:
            deref = terms.derefs[0]
            slot = slot_of_pattern(deref.address)
            var = resolver.variable_for_slot(info.function, slot) \
                if slot else None
            if var is not None and var.type.kind == "pointer" \
                    and var.type.elem is not None:
                pointee = var.type.elem
                struct = resolver.resolve_struct(pointee)
                if struct is not None:
                    loc, _ = resolver.location_type(struct,
                                                    max(terms.const, 0))
                    kind = "A" if terms.has_var_index else "F"
                    return kind, loc
                if terms.has_var_index:
                    return "A", pointee
                return ("F" if terms.const else "S"), pointee
            # Unresolvable pointer chain.
            return ("A" if terms.has_var_index else "F"), None
        # Direct sp/gp-relative access.
        base = "gp" if "gp" in terms.bases else \
            ("sp" if "sp" in terms.bases else None)
        if base is not None:
            var = resolver.variable_for_slot(info.function,
                                             (base, terms.const))
            if var is not None:
                loc, kind = resolver.location_type(var.type,
                                                   terms.const - var.offset)
                if terms.has_var_index:
                    kind = "A"
                return kind, loc
        return ("A" if terms.has_var_index else "S"), None


def classify(program: Program,
             load_infos: Mapping[int, LoadInfo],
             block_map: Optional[BlockMap] = None,
             include_chain: bool = True) -> BDHResult:
    return BDHClassifier(program, block_map,
                         include_chain=include_chain).classify(load_infos)
