"""188.ammp analogue: molecular dynamics with neighbor lists.

ammp computes pairwise forces over atoms gathered through neighbor index
lists — float struct-array loads driven by indirection, with periodic
neighbor-list rebuilds.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(atoms: int, neighbors: int, steps: int, seed: int) -> str:
    cold = coldcode.block("amp")
    return f"""
struct atom {{
    float x;
    float y;
    float z;
    float fx;
    float fy;
    float fz;
    int serial;
}};

struct atom *atoms_arr;
int *neighbor_idx;
int checksum;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

float frand() {{
    return (float) (rand() & 1023) / 64.0;
}}

void build() {{
    int i;
    int k;
    atoms_arr = (struct atom*) malloc({atoms} * sizeof(struct atom));
    neighbor_idx = (int*) malloc({atoms} * {neighbors} * 4);
    for (i = 0; i < {atoms}; i = i + 1) {{
        atoms_arr[i].x = frand();
        atoms_arr[i].y = frand();
        atoms_arr[i].z = frand();
        atoms_arr[i].fx = 0.0;
        atoms_arr[i].fy = 0.0;
        atoms_arr[i].fz = 0.0;
        atoms_arr[i].serial = i;
    }}
    for (i = 0; i < {atoms}; i = i + 1)
        for (k = 0; k < {neighbors}; k = k + 1)
            neighbor_idx[i * {neighbors} + k] = big_rand() % {atoms};
}}

void forces() {{
    int i;
    int k;
    int j;
    float dx;
    float dy;
    float dz;
    float r2;
    for (i = 0; i < {atoms}; i = i + 1) {{
        for (k = 0; k < {neighbors}; k = k + 1) {{
            j = neighbor_idx[i * {neighbors} + k];
            dx = atoms_arr[j].x - atoms_arr[i].x;
            dy = atoms_arr[j].y - atoms_arr[i].y;
            dz = atoms_arr[j].z - atoms_arr[i].z;
            r2 = dx * dx + dy * dy + dz * dz + 1.0;
            atoms_arr[i].fx = atoms_arr[i].fx + dx / r2;
            atoms_arr[i].fy = atoms_arr[i].fy + dy / r2;
            atoms_arr[i].fz = atoms_arr[i].fz + dz / r2;
            {cold.guard('(int) (r2 * 256.0)', 'i')}
            {cold.warm_guard('(int) (r2 * 32.0)', 'i')}
        }}
    }}
}}

void integrate() {{
    int i;
    for (i = 0; i < {atoms}; i = i + 1) {{
        atoms_arr[i].x = atoms_arr[i].x + atoms_arr[i].fx * 0.01;
        atoms_arr[i].y = atoms_arr[i].y + atoms_arr[i].fy * 0.01;
        atoms_arr[i].z = atoms_arr[i].z + atoms_arr[i].fz * 0.01;
    }}
}}

{cold.functions}

int main() {{
    int s;
    srand({seed});
    build();
    for (s = 0; s < {steps}; s = s + 1) {{
        forces();
        integrate();
    }}
    checksum = (int) (atoms_arr[0].x + atoms_arr[{atoms} - 1].y);
    print_int(checksum);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="188.ammp",
    category=TRAINING,
    description="molecular dynamics: neighbor-list indirection into a "
                "float atom-struct array",
    source=source,
    inputs=make_inputs(
        {"atoms": 2500, "neighbors": 8, "steps": 3, "seed": 188},
        {"atoms": 2000, "neighbors": 10, "steps": 3, "seed": 881},
    ),
    scale_keys=("steps",),
)
