"""072.sc analogue: spreadsheet recalculation.

sc recomputes a grid of cells whose formulas reference other cells; each
recalc walks the sheet and gathers referenced cell values through a small
dependency list — indexed struct loads with one level of indirection.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(rows: int, cols: int, recalcs: int, seed: int) -> str:
    cold = coldcode.block("sc")
    cells = rows * cols
    n_stats = 32
    stat_decls = "\n".join(
        f"int col_count_{k}; int col_pad_{k}[7];" for k in range(n_stats))
    tally_chain = "\n".join(
        f"    {'if' if k == 0 else 'else if'} (col == {k}) "
        f"col_count_{k} = col_count_{k} + 1;"
        for k in range(n_stats))
    return f"""
struct cell {{
    int value;
    int formula;
    int dep0;
    int dep1;
    int dep2;
}};

struct cell *sheet;
int recalc_count;
{cold.declarations}

/* per-column usage counters: sc-style global bookkeeping scalars whose
   plain gp-relative loads still miss under sheet streaming */
{stat_decls}

void count_column(int col) {{
{tally_chain}
}}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void build() {{
    int i;
    sheet = (struct cell*) malloc({cells} * sizeof(struct cell));
    for (i = 0; i < {cells}; i = i + 1) {{
        sheet[i].value = rand() % 100;
        sheet[i].formula = rand() & 3;
        sheet[i].dep0 = big_rand() % {cells};
        sheet[i].dep1 = big_rand() % {cells};
        sheet[i].dep2 = big_rand() % {cells};
    }}
}}

int eval_cell(int i) {{
    int f;
    int a;
    int b;
    int c;
    f = sheet[i].formula;
    a = sheet[sheet[i].dep0].value;
    b = sheet[sheet[i].dep1].value;
    if (f == 0)
        return a + b;
    if (f == 1)
        return a - b;
    c = sheet[sheet[i].dep2].value;
    if (f == 2)
        return a + b + c;
    return (a + b + c) / 3;
}}

{cold.functions}

int main() {{
    int pass;
    int i;
    int total;
    srand({seed});
    build();
    recalc_count = 0;
    total = 0;
    for (pass = 0; pass < {recalcs}; pass = pass + 1) {{
        for (i = 0; i < {cells}; i = i + 1) {{
            sheet[i].value = eval_cell(i) & 1023;
            count_column(sheet[i].dep0 & 31);
            recalc_count = recalc_count + 1;
            {cold.guard('sheet[i].value + i', 'pass')}
            {cold.warm_guard('sheet[i].value', 'pass')}
        }}
        total = total + sheet[big_rand() % {cells}].value;
    }}
    print_int(total);
    print_int(recalc_count);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="072.sc",
    category=TEST,
    description="spreadsheet recalc: double-indexed cell loads "
                "(sheet[sheet[i].dep].value)",
    source=source,
    inputs=make_inputs(
        {"rows": 80, "cols": 40, "recalcs": 10, "seed": 72},
        {"rows": 64, "cols": 48, "recalcs": 11, "seed": 27},
    ),
    scale_keys=("recalcs",),
)
