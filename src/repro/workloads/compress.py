"""129.compress analogue: LZW-style hash-table compression.

The real compress is dominated by probes into a large open-addressed hash
table (``htab``/``codetab``): an index computed by shifting and XOR, then
a secondary-probe loop.  Misses concentrate on the two table loads.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(table_bits: int, symbols: int, seed: int) -> str:
    cold = coldcode.block("cmp")
    table_size = 1 << table_bits
    return f"""
int *htab;
int *codetab;
int free_code;
int filled;
int matched;
{cold.declarations}

int probe(int key) {{
    int h;
    int step;
    h = (key ^ (key >> 6)) & {table_size - 1};
    step = (key >> 4 | 1) & 255;
    while (htab[h] != 0) {{
        if (htab[h] == key)
            return codetab[h];
        h = (h + step) & {table_size - 1};
    }}
    /* keep the table at most half full so probes always terminate
       (real compress emits a CLEAR code instead) */
    if (filled < {table_size // 2}) {{
        htab[h] = key;
        codetab[h] = free_code;
        free_code = free_code + 1;
        filled = filled + 1;
    }}
    return 0 - 1;
}}

{cold.functions}

int main() {{
    int i;
    int code;
    int prefix;
    int found;
    srand({seed});
    htab = (int*) calloc({table_size}, 4);
    codetab = (int*) calloc({table_size}, 4);
    free_code = 256;
    filled = 0;
    matched = 0;
    prefix = rand() & 255;
    for (i = 0; i < {symbols}; i = i + 1) {{
        code = rand() & 255;
        {cold.guard('(prefix << 9) + code', 'i')}
        {cold.warm_guard('(prefix << 3) + code', 'i')}
        found = probe((prefix << 9) + code + 1);
        if (found >= 0) {{
            prefix = found & 255;
            matched = matched + 1;
        }} else {{
            prefix = code;
        }}
    }}
    print_int(matched);
    print_int(free_code);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="129.compress",
    category=TRAINING,
    description="LZW hash-table probing: shift/xor indexed table loads "
                "with secondary probing over a table larger than L1",
    source=source,
    inputs=make_inputs(
        {"table_bits": 15, "symbols": 40000, "seed": 31},
        {"table_bits": 15, "symbols": 48000, "seed": 1234},
    ),
    scale_keys=("symbols",),
)
