"""197.parser analogue: dictionary lookups over hashed linked chains.

The link-grammar parser hammers its word dictionary: hash a token, walk a
bucket's linked list comparing entries, occasionally insert.  Misses pile
onto the chain-following loads.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(buckets: int, vocabulary: int, lookups: int, seed: int) -> str:
    cold = coldcode.block("par")
    return f"""
struct entry {{
    int key;
    int count;
    int length;
    struct entry *next;
}};

struct entry **table;
int hits;
int inserted;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

int hash_key(int key) {{
    int h;
    h = key * 2654435761;
    if (h < 0)
        h = 0 - h;
    return h % {buckets};
}}

struct entry *find(int key) {{
    struct entry *e;
    e = table[hash_key(key)];
    while (e != NULL) {{
        if (e->key == key)
            return e;
        e = e->next;
    }}
    return NULL;
}}

void insert(int key) {{
    struct entry *e;
    int h;
    e = (struct entry*) malloc(sizeof(struct entry));
    h = hash_key(key);
    e->key = key;
    e->count = 0;
    e->length = key & 15;
    e->next = table[h];
    table[h] = e;
    inserted = inserted + 1;
}}

{cold.functions}

int main() {{
    int i;
    int key;
    struct entry *e;
    srand({seed});
    table = (struct entry**) calloc({buckets}, 4);
    hits = 0;
    inserted = 0;
    for (i = 0; i < {vocabulary}; i = i + 1)
        insert(big_rand() % {vocabulary * 4});
    for (i = 0; i < {lookups}; i = i + 1) {{
        key = big_rand() % {vocabulary * 4};
        {cold.guard('key', 'i')}
        {cold.warm_guard('key >> 2', 'i')}
        e = find(key);
        if (e != NULL) {{
            e->count = e->count + 1;
            hits = hits + 1;
        }} else if ((i & 63) == 0) {{
            insert(key);
        }}
    }}
    print_int(hits);
    print_int(inserted);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="197.parser",
    category=TRAINING,
    description="dictionary hashing: bucket-chain pointer walks with "
                "occasional inserts into a growing heap",
    source=source,
    inputs=make_inputs(
        {"buckets": 1024, "vocabulary": 6000, "lookups": 30000, "seed": 5},
        {"buckets": 512, "vocabulary": 8000, "lookups": 26000, "seed": 77},
    ),
    scale_keys=("lookups",),
)
