"""Cold-code generator: the rarely executed bulk of a real binary.

SPEC binaries are dominated by code that almost never runs — error
handling, option parsing, dump/audit/repair paths, boundary cases.  That
cold mass is what makes the paper's numbers possible: basic-block
profiling selects only 4.73% of static loads (Table 1), and removing the
frequency classes AG8/AG9 doubles the heuristic's pi (Table 11), exactly
because most static loads live in code that executes rarely if at all.

Purely-hot synthetic kernels lack that mass, so every workload embeds a
generated *cold block*: a family of audit/dump/repair functions full of
ordinary structured loads (array indexing, pointer chains, struct
fields), reachable only behind data-dependent guards that fire never or
a handful of times.  The guards use runtime values, so no analysis in
this package can discharge them statically — the loads count fully
toward |Lambda| and are classified like any others.

Usage inside a workload template::

    cold = coldcode.block("mcf", functions=6)
    source = f"... {cold.declarations} ... {cold.functions} ..."
    # and inside a hot (but not innermost) loop:
    #   {cold.guard("checksum", "pass_index")}
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class ColdBlock:
    prefix: str
    declarations: str
    functions: str
    entry: str              # name of the dispatcher function

    def guard(self, value_expr: str, salt_expr: str = "0") -> str:
        """A rare, data-dependent call site for the dispatcher
        (fires ~once per 8192 evaluations: the cold functions stay in
        the AG9 'rarely executed' band or never run at all)."""
        return (f"if ((({value_expr}) & 8191) == 4099) "
                f"{self.entry}(({value_expr}) ^ ({salt_expr}));")

    def warm_guard(self, value_expr: str, salt_expr: str = "1") -> str:
        """A 'seldom' call site (~once per 1024 evaluations): drives
        one audit routine into the AG8 100..999-executions band."""
        return (f"if ((({value_expr}) & 1023) == 611) "
                f"{self.prefix}_cold_hits = {self.prefix}_cold_hits + "
                f"{self.prefix}_audit_0(({value_expr}) ^ ({salt_expr}));")


def _audit_fn(prefix: str, k: int) -> str:
    """A cold function scanning the block's arrays with varied idioms."""
    return f"""
int {prefix}_audit_{k}(int key) {{
    int i;
    int acc;
    struct {prefix}_cold_rec *r;
    acc = {prefix}_cold_tab[(key + {3 * k + 1}) & 63];
    for (i = 0; i < 12; i = i + 1)
        acc = acc + {prefix}_cold_tab[(key + i * {k + 3}) & 63]
                  + {prefix}_cold_aux[(acc + i) & 31];
    r = {prefix}_cold_head;
    while (r != NULL && acc > 0) {{
        acc = acc - r->weight + r->flags[(key + {k}) & 7];
        r = r->link;
    }}
    if (acc < 0)
        acc = {prefix}_cold_tab[{k} & 63] - acc;
    return acc;
}}"""


def _repair_fn(prefix: str, k: int) -> str:
    """A cold mutator: rebuilds part of the cold state."""
    return f"""
void {prefix}_repair_{k}(int seed) {{
    int i;
    struct {prefix}_cold_rec *r;
    for (i = 0; i < 8; i = i + 1)
        {prefix}_cold_tab[(seed + i * {2 * k + 5}) & 63] =
            {prefix}_cold_aux[i & 31] + i;
    r = (struct {prefix}_cold_rec*)
        malloc(sizeof(struct {prefix}_cold_rec));
    r->weight = seed & 255;
    r->link = {prefix}_cold_head;
    for (i = 0; i < 8; i = i + 1)
        r->flags[i] = ({prefix}_cold_tab[i] >> {k % 5}) & 15;
    {prefix}_cold_head = r;
}}"""


def _dump_fn(prefix: str, k: int) -> str:
    """A cold reporter walking every structure once."""
    return f"""
int {prefix}_dump_{k}(int level) {{
    int i;
    int lines;
    struct {prefix}_cold_rec *r;
    lines = 0;
    if (level > 2) {{
        for (i = 0; i < 16; i = i + 1) {{
            if ({prefix}_cold_tab[i * 4 & 63] > level)
                lines = lines + 1;
        }}
    }}
    r = {prefix}_cold_head;
    while (r != NULL) {{
        lines = lines + (r->weight > level)
              + r->flags[level & 7];
        r = r->link;
    }}
    if (lines > 100000)
        print_int(lines);
    return lines;
}}"""


def block(prefix: str, functions: int = 6) -> ColdBlock:
    """Generate a cold block with roughly ``functions`` cold routines."""
    declarations = f"""
/* ---- cold block: rare-path audit/repair/dump state ------------- */
struct {prefix}_cold_rec {{
    int weight;
    int flags[8];
    struct {prefix}_cold_rec *link;
}};
int {prefix}_cold_tab[64];
int {prefix}_cold_aux[32];
struct {prefix}_cold_rec *{prefix}_cold_head;
int {prefix}_cold_hits;
"""
    bodies: list[str] = []
    dispatch_cases: list[str] = []
    kinds = (_audit_fn, _repair_fn, _dump_fn)
    for k in range(functions):
        maker = kinds[k % len(kinds)]
        bodies.append(maker(prefix, k))
        name = {0: f"{prefix}_audit_{k}", 1: f"{prefix}_repair_{k}",
                2: f"{prefix}_dump_{k}"}[k % 3]
        if k % 3 == 0:
            call = f"{prefix}_cold_hits = {prefix}_cold_hits + " \
                   f"{name}(code);"
        elif k % 3 == 1:
            call = f"{name}(code);"
        else:
            call = f"{prefix}_cold_hits = {prefix}_cold_hits + " \
                   f"{name}(code & 7);"
        keyword = "if" if k == 0 else "else if"
        dispatch_cases.append(
            f"    {keyword} ((code % {functions}) == {k}) {call}")
    dispatcher = f"""
void {prefix}_cold_path(int code) {{
    if (code < 0)
        code = 0 - code;
{chr(10).join(dispatch_cases)}
}}"""
    return ColdBlock(
        prefix=prefix,
        declarations=declarations,
        functions="\n".join(bodies) + "\n" + dispatcher,
        entry=f"{prefix}_cold_path",
    )
