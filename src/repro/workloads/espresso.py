"""008.espresso analogue: two-level logic minimization over bit-vector
cubes.

espresso manipulates covers: arrays of multi-word bit vectors combined
with AND/OR sweeps, distance tests and popcount table lookups — word-
strided integer loads over a mid-sized working set.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(cubes: int, words: int, passes: int, seed: int) -> str:
    cold = coldcode.block("esp")
    return f"""
int *cover;          /* cubes x words bit-vectors */
int popcount_tab[256];
int kept;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void init_tables() {{
    int v;
    int bits;
    int x;
    for (v = 0; v < 256; v = v + 1) {{
        bits = 0;
        x = v;
        while (x != 0) {{
            bits = bits + (x & 1);
            x = x >> 1;
        }}
        popcount_tab[v] = bits;
    }}
}}

void init_cover() {{
    int c;
    int w;
    cover = (int*) malloc({cubes} * {words} * 4);
    for (c = 0; c < {cubes}; c = c + 1)
        for (w = 0; w < {words}; w = w + 1)
            cover[c * {words} + w] = big_rand();
}}

int distance(int a, int b) {{
    int w;
    int x;
    int d;
    d = 0;
    for (w = 0; w < {words}; w = w + 1) {{
        x = cover[a * {words} + w] ^ cover[b * {words} + w];
        d = d + popcount_tab[x & 255];
        d = d + popcount_tab[(x >> 8) & 255];
        d = d + popcount_tab[(x >> 16) & 255];
        d = d + popcount_tab[(x >> 24) & 255];
    }}
    return d;
}}

void absorb(int a, int b) {{
    int w;
    for (w = 0; w < {words}; w = w + 1)
        cover[a * {words} + w] =
            cover[a * {words} + w] & cover[b * {words} + w];
}}

{cold.functions}

int main() {{
    int pass;
    int c;
    int other;
    srand({seed});
    init_tables();
    init_cover();
    kept = 0;
    for (pass = 0; pass < {passes}; pass = pass + 1) {{
        for (c = 0; c < {cubes}; c = c + 1) {{
            other = big_rand() % {cubes};
            {cold.guard('other * 31 + c', 'pass')}
            {cold.warm_guard('other + c', 'pass')}
            if (distance(c, other) < {words} * 12)
                absorb(c, other);
            else
                kept = kept + 1;
        }}
    }}
    print_int(kept);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="008.espresso",
    category=TRAINING,
    description="bit-vector cover minimization: strided word scans, "
                "XOR distance with popcount table lookups",
    source=source,
    inputs=make_inputs(
        {"cubes": 600, "words": 16, "passes": 10, "seed": 8},
        {"cubes": 800, "words": 12, "passes": 9, "seed": 88},
    ),
    scale_keys=("passes",),
)
