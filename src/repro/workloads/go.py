"""099.go analogue: board-game position evaluation.

go evaluates positions on a small board with heavy control flow: neighbor
scans, iterative flood fill of groups, and liberty counting — short,
branchy loops over arrays that mostly fit in cache (the paper's go also
shows mediocre precision: many loads look alike).
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(board_size: int, moves: int, seed: int) -> str:
    cold = coldcode.block("go")
    cells = board_size * board_size
    return f"""
int board[{cells}];
int group_id[{cells}];
int liberties[{cells}];
int stack_buf[{cells}];
int *pattern_tab;          /* position-hash pattern library */
int *history;              /* game record of hashed positions */
int score;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

int pattern_value(int pos, int color) {{
    int h;
    h = (pos * 2654435761 + color * 40503) & 65535;
    return pattern_tab[h];
}}

{cold.functions}

int flood(int start, int color) {{
    int top;
    int size;
    int pos;
    int next;
    int d;
    int deltas[4];
    deltas[0] = 1;
    deltas[1] = 0 - 1;
    deltas[2] = {board_size};
    deltas[3] = 0 - {board_size};
    top = 0;
    size = 0;
    stack_buf[top] = start;
    top = top + 1;
    group_id[start] = start + 1;
    while (top > 0) {{
        top = top - 1;
        pos = stack_buf[top];
        size = size + 1;
        for (d = 0; d < 4; d = d + 1) {{
            next = pos + deltas[d];
            if (next >= 0 && next < {cells}) {{
                if (board[next] == color && group_id[next] != start + 1) {{
                    group_id[next] = start + 1;
                    if (top < {cells}) {{
                        stack_buf[top] = next;
                        top = top + 1;
                    }}
                }}
                if (board[next] == 0)
                    liberties[start] = liberties[start] + 1;
            }}
        }}
    }}
    return size;
}}

void clear_groups() {{
    int i;
    for (i = 0; i < {cells}; i = i + 1) {{
        group_id[i] = 0;
        liberties[i] = 0;
    }}
}}

int main() {{
    int m;
    int pos;
    int color;
    int i;
    srand({seed});
    score = 0;
    pattern_tab = (int*) malloc(65536 * 4);
    history = (int*) malloc({moves} * 4);
    for (i = 0; i < 65536; i = i + 1)
        pattern_tab[i] = big_rand() & 255;
    for (i = 0; i < {cells}; i = i + 1)
        board[i] = 0;
    for (m = 0; m < {moves}; m = m + 1) {{
        pos = rand() % {cells};
        color = 1 + (m & 1);
        score = score + pattern_value(pos, color);
        history[m] = pos * 4 + color;
        {cold.guard('score + pos', 'm')}
        {cold.warm_guard('score', 'm')}
        if (m > 16 && history[m - (rand() & 15)] == history[m])
            score = score - 1;
        if (board[pos] == 0)
            board[pos] = color;
        if ((m & 7) == 0) {{
            clear_groups();
            for (i = 0; i < {cells}; i = i + 1) {{
                if (board[i] != 0 && group_id[i] == 0)
                    score = score + flood(i, board[i]);
            }}
        }}
    }}
    print_int(score);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="099.go",
    category=TRAINING,
    description="board evaluation: branchy neighbor scans and iterative "
                "flood fill over small arrays",
    source=source,
    inputs=make_inputs(
        {"board_size": 19, "moves": 1100, "seed": 50},
        {"board_size": 21, "moves": 1200, "seed": 60},
    ),
    scale_keys=("moves",),
)
