"""179.art analogue: adaptive-resonance neural network over float arrays.

art streams through large float weight matrices (bottom-up and top-down)
for every presented pattern — long unit-stride scans with multiply-
accumulate, the canonical strided-FP delinquent loads.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(f1_size: int, f2_size: int, patterns: int, seed: int) -> str:
    cold = coldcode.block("art")
    return f"""
float *bus;        /* bottom-up weights, f2 x f1 */
float *tds;        /* top-down weights, f2 x f1 */
float *f1_act;
float *f2_act;
int winner_hist;
{cold.declarations}

float frand() {{
    return (float) (rand() & 1023) / 1024.0;
}}

void init() {{
    int i;
    int j;
    bus = (float*) malloc({f1_size} * {f2_size} * 4);
    tds = (float*) malloc({f1_size} * {f2_size} * 4);
    f1_act = (float*) malloc({f1_size} * 4);
    f2_act = (float*) malloc({f2_size} * 4);
    for (i = 0; i < {f2_size}; i = i + 1) {{
        for (j = 0; j < {f1_size}; j = j + 1) {{
            bus[i * {f1_size} + j] = frand();
            tds[i * {f1_size} + j] = frand();
        }}
    }}
}}

int present() {{
    int i;
    int j;
    int winner;
    float best;
    float acc;
    for (j = 0; j < {f1_size}; j = j + 1)
        f1_act[j] = frand();
    winner = 0;
    best = 0.0 - 1.0;
    for (i = 0; i < {f2_size}; i = i + 1) {{
        acc = 0.0;
        for (j = 0; j < {f1_size}; j = j + 1)
            acc = acc + bus[i * {f1_size} + j] * f1_act[j];
        f2_act[i] = acc;
        {cold.guard('(int) (acc * 512.0)', 'i')}
        {cold.warm_guard('(int) (acc * 64.0)', 'i')}
        if (acc > best) {{
            best = acc;
            winner = i;
        }}
    }}
    for (j = 0; j < {f1_size}; j = j + 1) {{
        tds[winner * {f1_size} + j] =
            tds[winner * {f1_size} + j] * 0.9 + f1_act[j] * 0.1;
    }}
    return winner;
}}

{cold.functions}

int main() {{
    int p;
    srand({seed});
    winner_hist = 0;
    init();
    for (p = 0; p < {patterns}; p = p + 1)
        winner_hist = winner_hist + present();
    print_int(winner_hist);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="179.art",
    category=TRAINING,
    description="neural-net recognition: unit-stride scans of float "
                "weight matrices much larger than L1",
    source=source,
    inputs=make_inputs(
        {"f1_size": 500, "f2_size": 24, "patterns": 24, "seed": 42},
        {"f1_size": 400, "f2_size": 30, "patterns": 28, "seed": 4242},
    ),
    scale_keys=("patterns",),
)
