"""147.vortex analogue: object-oriented database transactions.

vortex manages portfolios of linked objects: record lookup through an
index, then field accesses and sub-object chains.  Loads mix indexed
table accesses with multi-level dereferencing.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(records: int, transactions: int, seed: int) -> str:
    cold = coldcode.block("vtx")
    return f"""
struct part {{
    int weight;
    int cost;
    struct part *component;
}};

struct record {{
    int key;
    int status;
    int balance;
    struct part *root_part;
    struct record *link;
}};

struct record **index_tab;
int committed;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void populate() {{
    int i;
    struct record *r;
    struct part *p;
    struct part *q;
    index_tab = (struct record**) malloc({records} * 4);
    for (i = 0; i < {records}; i = i + 1) {{
        r = (struct record*) malloc(sizeof(struct record));
        r->key = i;
        r->status = 0;
        r->balance = rand() % 10000;
        p = (struct part*) malloc(sizeof(struct part));
        p->weight = rand() % 100;
        p->cost = rand() % 500;
        q = (struct part*) malloc(sizeof(struct part));
        q->weight = rand() % 100;
        q->cost = rand() % 500;
        q->component = NULL;
        p->component = q;
        r->root_part = p;
        r->link = NULL;
        if (i > 0)
            r->link = index_tab[big_rand() % i];
        index_tab[i] = r;
    }}
}}

int transact(int key) {{
    struct record *r;
    struct part *p;
    int value;
    int hops;
    r = index_tab[key];
    value = r->balance;
    p = r->root_part;
    while (p != NULL) {{
        value = value + p->cost * p->weight;
        p = p->component;
    }}
    hops = 0;
    while (r->link != NULL && hops < 6) {{
        r = r->link;
        value = value + r->balance;
        hops = hops + 1;
    }}
    return value;
}}

{cold.functions}

int main() {{
    int t;
    int total;
    srand({seed});
    populate();
    total = 0;
    committed = 0;
    for (t = 0; t < {transactions}; t = t + 1) {{
        total = total + transact(big_rand() % {records});
        {cold.guard('total', 't')}
        {cold.warm_guard('total >> 1', 't')}
        committed = committed + 1;
    }}
    print_int(committed);
    print_int(total & 65535);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="147.vortex",
    category=TRAINING,
    description="object database: index-table loads followed by record "
                "and sub-part pointer chains",
    source=source,
    inputs=make_inputs(
        {"records": 4000, "transactions": 12000, "seed": 147},
        {"records": 3000, "transactions": 15000, "seed": 741},
    ),
    scale_keys=("transactions",),
)
