"""124.m88ksim analogue: an instruction-set simulator simulating itself.

m88ksim decodes and dispatches a synthetic instruction stream against a
register file and small data memory — table-driven dispatch with good
locality (the paper's m88ksim is the case where block profiling covers
poorly: execution spreads over many lukewarm blocks).
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(imem_words: int, steps: int, seed: int) -> str:
    cold = coldcode.block("m88")
    return f"""
int *imem;
int *dmem;
int regs[32];
int cycle_count;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void boot() {{
    int i;
    imem = (int*) malloc({imem_words} * 4);
    dmem = (int*) calloc(4096, 4);
    for (i = 0; i < {imem_words}; i = i + 1)
        imem[i] = big_rand();
    for (i = 0; i < 32; i = i + 1)
        regs[i] = i * 7;
}}

int step(int pc) {{
    int word;
    int op;
    int rd;
    int rs;
    int rt;
    word = imem[pc % {imem_words}];
    op = (word >> 26) & 7;
    rd = (word >> 21) & 31;
    rs = (word >> 16) & 31;
    rt = (word >> 11) & 31;
    if (op == 0)
        regs[rd] = regs[rs] + regs[rt];
    else if (op == 1)
        regs[rd] = regs[rs] - regs[rt];
    else if (op == 2)
        regs[rd] = regs[rs] & regs[rt];
    else if (op == 3)
        regs[rd] = dmem[(regs[rs] + word) & 4095];
    else if (op == 4)
        dmem[(regs[rs] + word) & 4095] = regs[rt];
    else if (op == 5)
        regs[rd] = regs[rs] << (word & 15);
    else if (op == 6) {{
        if (regs[rs] > regs[rt])
            return (pc + (word & 255)) % {imem_words};
    }} else
        regs[rd] = word & 65535;
    regs[0] = 0;
    return pc + 1;
}}

{cold.functions}

int main() {{
    int pc;
    int s;
    srand({seed});
    boot();
    pc = 0;
    cycle_count = 0;
    for (s = 0; s < {steps}; s = s + 1) {{
        pc = step(pc);
        {cold.guard('regs[pc & 31] + pc', 's')}
        {cold.warm_guard('pc + s', 's')}
        cycle_count = cycle_count + 1;
    }}
    print_int(cycle_count);
    print_int(regs[5] & 65535);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="124.m88ksim",
    category=TEST,
    description="ISA simulator: decode/dispatch over an instruction "
                "array with register-file and small-memory traffic",
    source=source,
    inputs=make_inputs(
        {"imem_words": 20000, "steps": 60000, "seed": 124},
        {"imem_words": 16000, "steps": 70000, "seed": 421},
    ),
    scale_keys=("steps",),
)
