"""300.twolf analogue: standard-cell placement cost evaluation.

twolf's inner loops walk cells and their net pins, recomputing wire
penalties after random swaps — struct-array loads, pin indirection and a
dense occupancy grid.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(cells: int, pins: int, grid: int, sweeps: int,
           seed: int) -> str:
    cold = coldcode.block("twf")
    return f"""
struct pin {{
    int net;
    int offset;
}};

struct cellrec {{
    int x;
    int y;
    int width;
    struct pin *pins;
}};

struct cellrec *cells_arr;
int *occupancy;
int *net_span;
int penalty;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void build() {{
    int i;
    int p;
    cells_arr = (struct cellrec*) malloc({cells} * sizeof(struct cellrec));
    occupancy = (int*) calloc({grid} * {grid}, 4);
    net_span = (int*) calloc({cells}, 4);
    for (i = 0; i < {cells}; i = i + 1) {{
        cells_arr[i].x = rand() % {grid};
        cells_arr[i].y = rand() % {grid};
        cells_arr[i].width = 1 + (rand() & 3);
        cells_arr[i].pins = (struct pin*) malloc({pins} * sizeof(struct pin));
        for (p = 0; p < {pins}; p = p + 1) {{
            cells_arr[i].pins[p].net = big_rand() % {cells};
            cells_arr[i].pins[p].offset = rand() & 7;
        }}
    }}
}}

int cell_penalty(int i) {{
    int p;
    int net;
    int dx;
    int dy;
    int cost;
    struct pin *pp;
    cost = 0;
    pp = cells_arr[i].pins;
    for (p = 0; p < {pins}; p = p + 1) {{
        net = pp[p].net;
        dx = cells_arr[i].x - cells_arr[net].x;
        dy = cells_arr[i].y - cells_arr[net].y;
        if (dx < 0) dx = 0 - dx;
        if (dy < 0) dy = 0 - dy;
        cost = cost + dx + dy + pp[p].offset;
        net_span[net] = dx + dy;
    }}
    return cost;
}}

{cold.functions}

int main() {{
    int s;
    int i;
    int victim;
    srand({seed});
    build();
    penalty = 0;
    for (s = 0; s < {sweeps}; s = s + 1) {{
        for (i = 0; i < {cells}; i = i + 1) {{
            occupancy[cells_arr[i].y * {grid} + cells_arr[i].x] = i;
            penalty = penalty + cell_penalty(i);
            {cold.guard('penalty + i', 's')}
            {cold.warm_guard('penalty', 's')}
        }}
        victim = big_rand() % {cells};
        cells_arr[victim].x = rand() % {grid};
        cells_arr[victim].y = rand() % {grid};
    }}
    print_int(penalty & 1048575);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="300.twolf",
    category=TEST,
    description="cell placement: pin-list indirection between cell "
                "structs plus an occupancy grid",
    source=source,
    inputs=make_inputs(
        {"cells": 3500, "pins": 5, "grid": 64, "sweeps": 6, "seed": 300},
        {"cells": 3000, "pins": 6, "grid": 48, "sweeps": 6, "seed": 3},
    ),
    scale_keys=("sweeps",),
)
