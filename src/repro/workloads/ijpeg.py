"""132.ijpeg analogue: blocked 8x8 image transform and quantization.

ijpeg processes an image in 8x8 blocks: a separable butterfly transform,
quantization against a coefficient table, and a zig-zag-ish accumulation —
blocked strided integer loads with small-table lookups.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(width: int, height: int, passes: int, seed: int) -> str:
    cold = coldcode.block("jpg")
    n_stats = 32
    stat_decls = "\n".join(
        f"int huff_count_{k}; int huff_pad_{k}[7];"
        for k in range(n_stats))
    tally_chain = "\n".join(
        f"    {'if' if k == 0 else 'else if'} (bucket == {k}) "
        f"huff_count_{k} = huff_count_{k} + 1;"
        for k in range(n_stats))
    return f"""
int *image;
int quant_tab[64];
int zigzag[64];
int energy;
{cold.declarations}

/* per-symbol entropy-coder statistics: plain global scalars whose loads
   the heuristic cannot flag, but which miss under image streaming */
{stat_decls}

void record_symbol(int bucket) {{
{tally_chain}
}}

void init() {{
    int i;
    image = (int*) malloc({width} * {height} * 4);
    for (i = 0; i < {width} * {height}; i = i + 1)
        image[i] = rand() & 255;
    for (i = 0; i < 64; i = i + 1) {{
        quant_tab[i] = 1 + (i / 8) + (i % 8);
        zigzag[i] = ((i * 19) + 7) & 63;
    }}
}}

void transform_block(int bx, int by) {{
    int workspace[64];
    int r;
    int c;
    int sum;
    int diff;
    for (r = 0; r < 8; r = r + 1) {{
        for (c = 0; c < 8; c = c + 1)
            workspace[r * 8 + c] =
                image[(by * 8 + r) * {width} + bx * 8 + c];
    }}
    for (r = 0; r < 8; r = r + 1) {{
        for (c = 0; c < 4; c = c + 1) {{
            sum = workspace[r * 8 + c] + workspace[r * 8 + 7 - c];
            diff = workspace[r * 8 + c] - workspace[r * 8 + 7 - c];
            workspace[r * 8 + c] = sum;
            workspace[r * 8 + 7 - c] = diff;
        }}
    }}
    for (c = 0; c < 8; c = c + 1) {{
        for (r = 0; r < 4; r = r + 1) {{
            sum = workspace[r * 8 + c] + workspace[(7 - r) * 8 + c];
            diff = workspace[r * 8 + c] - workspace[(7 - r) * 8 + c];
            workspace[r * 8 + c] = sum;
            workspace[(7 - r) * 8 + c] = diff;
        }}
    }}
    for (r = 0; r < 64; r = r + 1) {{
        energy = energy
            + (workspace[zigzag[r]] / quant_tab[r]) * (r & 3);
        image[(by * 8 + r / 8) * {width} + bx * 8 + r % 8] =
            workspace[r] / quant_tab[r];
    }}
    record_symbol(workspace[0] & 31);
    {cold.guard('energy + workspace[1]', 'bx')}
    {cold.warm_guard('energy', 'bx')}
    record_symbol((workspace[9] >> 2) & 31);
}}

{cold.functions}

int main() {{
    int p;
    int bx;
    int by;
    srand({seed});
    energy = 0;
    init();
    for (p = 0; p < {passes}; p = p + 1) {{
        for (by = 0; by < {height} / 8; by = by + 1)
            for (bx = 0; bx < {width} / 8; bx = bx + 1)
                transform_block(bx, by);
    }}
    print_int(energy & 1048575);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="132.ijpeg",
    category=TEST,
    description="blocked 8x8 image transform: strided block gathers, "
                "butterfly passes and quantization-table lookups",
    source=source,
    inputs=make_inputs(
        {"width": 192, "height": 128, "passes": 2, "seed": 132},
        {"width": 160, "height": 120, "passes": 2, "seed": 231},
    ),
    scale_keys=("passes",),
)
