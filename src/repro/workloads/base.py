"""Workload framework.

A workload is a MiniC program generator: given input parameters (sizes,
seeds, iteration counts) it produces source text with those parameters
baked in as constants — the analogue of running a SPEC benchmark on a
particular input file.  Every workload declares two canonical inputs
(paper Table 6 trains on Input 1 and tests stability on Input 2) and a
``scale`` knob lets tests run miniature instances.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

TRAINING = "training"
TEST = "test"


@dataclass(frozen=True)
class WorkloadInput:
    """One named parameterization of a workload."""

    name: str
    params: tuple[tuple[str, int], ...]

    def as_dict(self) -> dict[str, int]:
        return dict(self.params)

    def scaled(self, scale: float,
               scale_keys: tuple[str, ...]) -> dict[str, int]:
        values = self.as_dict()
        if scale != 1.0:
            for key in scale_keys:
                if key in values:
                    values[key] = max(1, int(values[key] * scale))
        return values


@dataclass(frozen=True)
class Workload:
    """A named benchmark: source generator plus its two inputs."""

    name: str                       # SPEC-style name, e.g. "181.mcf"
    category: str                   # TRAINING or TEST
    description: str
    source: Callable[..., str]      # kwargs = input params
    inputs: tuple[WorkloadInput, WorkloadInput]
    scale_keys: tuple[str, ...] = ()   # params that scale with Session.scale

    def generate(self, input_name: str = "input1",
                 scale: float = 1.0) -> str:
        for candidate in self.inputs:
            if candidate.name == input_name:
                return self.source(**candidate.scaled(scale,
                                                      self.scale_keys))
        raise KeyError(f"{self.name} has no input {input_name!r}")

    def input_names(self) -> list[str]:
        return [i.name for i in self.inputs]


def make_inputs(input1: dict[str, int],
                input2: dict[str, int]) -> tuple[WorkloadInput,
                                                 WorkloadInput]:
    return (
        WorkloadInput("input1", tuple(sorted(input1.items()))),
        WorkloadInput("input2", tuple(sorted(input2.items()))),
    )
