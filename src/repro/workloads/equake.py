"""183.equake analogue: sparse matrix-vector products (CSR).

equake's kernel is an earthquake FEM solve: repeated sparse matvecs whose
column-index indirection (``value[k] * x[col[k]]``) produces scattered
loads — the classic indirect-indexing delinquent load.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(rows: int, nnz_per_row: int, iterations: int, seed: int) -> str:
    cold = coldcode.block("eq")
    nnz = rows * nnz_per_row
    return f"""
int *row_ptr;
int *col_idx;
float *values;
float *x;
float *y;
int checksum;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void build() {{
    int r;
    int k;
    int idx;
    row_ptr = (int*) malloc(({rows} + 1) * 4);
    col_idx = (int*) malloc({nnz} * 4);
    values = (float*) malloc({nnz} * 4);
    x = (float*) malloc({rows} * 4);
    y = (float*) malloc({rows} * 4);
    idx = 0;
    for (r = 0; r < {rows}; r = r + 1) {{
        row_ptr[r] = idx;
        for (k = 0; k < {nnz_per_row}; k = k + 1) {{
            col_idx[idx] = big_rand() % {rows};
            values[idx] = (float) (rand() & 255) / 256.0;
            idx = idx + 1;
        }}
        x[r] = (float) (rand() & 255) / 128.0;
    }}
    row_ptr[{rows}] = idx;
}}

void matvec() {{
    int r;
    int k;
    int last;
    float acc;
    for (r = 0; r < {rows}; r = r + 1) {{
        acc = 0.0;
        last = row_ptr[r + 1];
        for (k = row_ptr[r]; k < last; k = k + 1)
            acc = acc + values[k] * x[col_idx[k]];
        y[r] = acc;
        {cold.guard('(int) (acc * 1024.0)', 'r')}
        {cold.warm_guard('(int) (acc * 128.0)', 'r')}
    }}
}}

void smooth() {{
    int r;
    for (r = 0; r < {rows}; r = r + 1)
        x[r] = x[r] * 0.5 + y[r] * 0.5;
}}

{cold.functions}

int main() {{
    int it;
    srand({seed});
    build();
    for (it = 0; it < {iterations}; it = it + 1) {{
        matvec();
        smooth();
    }}
    checksum = (int) (x[0] * 1000.0) + (int) (x[{rows} - 1] * 1000.0);
    print_int(checksum);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="183.equake",
    category=TRAINING,
    description="CSR sparse matvec: indirect x[col[k]] gathers over a "
                "vector larger than L1",
    source=source,
    inputs=make_inputs(
        {"rows": 4000, "nnz_per_row": 7, "iterations": 8, "seed": 99},
        {"rows": 3000, "nnz_per_row": 9, "iterations": 7, "seed": 5150},
    ),
    scale_keys=("iterations",),
)
