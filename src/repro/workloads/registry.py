"""Workload registry: the 18 synthetic SPEC-counterpart benchmarks.

Eleven *training* workloads mirror the set the paper trains its weights
on (Section 6 / Table 6); seven *test* workloads mirror the held-out set
of Section 8.4.
"""

from __future__ import annotations

from repro.workloads import (
    ammp, art, compress, equake, espresso, gcc, go, gzip, ijpeg, li,
    m88ksim, mcf, parser, sc, tomcatv, twolf, vortex, vpr,
)
from repro.workloads.base import TEST, TRAINING, Workload

ALL_WORKLOADS: tuple[Workload, ...] = (
    espresso.WORKLOAD,
    li.WORKLOAD,
    sc.WORKLOAD,
    go.WORKLOAD,
    tomcatv.WORKLOAD,
    m88ksim.WORKLOAD,
    gcc.WORKLOAD,
    compress.WORKLOAD,
    ijpeg.WORKLOAD,
    vortex.WORKLOAD,
    gzip.WORKLOAD,
    vpr.WORKLOAD,
    art.WORKLOAD,
    mcf.WORKLOAD,
    equake.WORKLOAD,
    ammp.WORKLOAD,
    parser.WORKLOAD,
    twolf.WORKLOAD,
)

BY_NAME: dict[str, Workload] = {w.name: w for w in ALL_WORKLOADS}


def get(name: str) -> Workload:
    if name not in BY_NAME:
        raise KeyError(f"unknown workload {name!r}; known: "
                       f"{sorted(BY_NAME)}")
    return BY_NAME[name]


def training_workloads() -> list[Workload]:
    return [w for w in ALL_WORKLOADS if w.category == TRAINING]


def test_workloads() -> list[Workload]:
    return [w for w in ALL_WORKLOADS if w.category == TEST]


def names(category: str | None = None) -> list[str]:
    return [w.name for w in ALL_WORKLOADS
            if category is None or w.category == category]
