"""101.tomcatv analogue: vectorized mesh generation (Fortran via f2c).

tomcatv iterates stencil updates over 2D float meshes: pure unit- and
row-strided FP loads across arrays several times larger than L1.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(mesh: int, iterations: int, seed: int) -> str:
    cold = coldcode.block("tom")
    return f"""
float *xg;
float *yg;
float *rxg;
float *ryg;
int residual;
{cold.declarations}

float frand() {{
    return (float) (rand() & 2047) / 2048.0;
}}

void init() {{
    int i;
    int j;
    xg = (float*) malloc({mesh} * {mesh} * 4);
    yg = (float*) malloc({mesh} * {mesh} * 4);
    rxg = (float*) malloc({mesh} * {mesh} * 4);
    ryg = (float*) malloc({mesh} * {mesh} * 4);
    for (i = 0; i < {mesh}; i = i + 1) {{
        for (j = 0; j < {mesh}; j = j + 1) {{
            xg[i * {mesh} + j] = (float) i + frand();
            yg[i * {mesh} + j] = (float) j + frand();
        }}
    }}
}}

void relax() {{
    int i;
    int j;
    float cx;
    float cy;
    for (i = 1; i < {mesh} - 1; i = i + 1) {{
        for (j = 1; j < {mesh} - 1; j = j + 1) {{
            cx = xg[(i - 1) * {mesh} + j] + xg[(i + 1) * {mesh} + j]
               + xg[i * {mesh} + j - 1] + xg[i * {mesh} + j + 1];
            cy = yg[(i - 1) * {mesh} + j] + yg[(i + 1) * {mesh} + j]
               + yg[i * {mesh} + j - 1] + yg[i * {mesh} + j + 1];
            rxg[i * {mesh} + j] = cx * 0.25 - xg[i * {mesh} + j];
            ryg[i * {mesh} + j] = cy * 0.25 - yg[i * {mesh} + j];
            {cold.guard('(int) (cx * 128.0) + j', 'i')}
            {cold.warm_guard('(int) (cy * 16.0)', 'i')}
        }}
    }}
    for (i = 1; i < {mesh} - 1; i = i + 1) {{
        for (j = 1; j < {mesh} - 1; j = j + 1) {{
            xg[i * {mesh} + j] = xg[i * {mesh} + j]
                + rxg[i * {mesh} + j] * 0.7;
            yg[i * {mesh} + j] = yg[i * {mesh} + j]
                + ryg[i * {mesh} + j] * 0.7;
        }}
    }}
}}

{cold.functions}

int main() {{
    int it;
    srand({seed});
    init();
    for (it = 0; it < {iterations}; it = it + 1)
        relax();
    residual = (int) (rxg[{mesh} + 1] * 1000.0)
             + (int) (ryg[{mesh} + 2] * 1000.0);
    print_int(residual);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="101.tomcatv",
    category=TEST,
    description="2D stencil relaxation over float meshes larger than L1",
    source=source,
    inputs=make_inputs(
        {"mesh": 96, "iterations": 6, "seed": 101},
        {"mesh": 80, "iterations": 7, "seed": 110},
    ),
    scale_keys=("iterations",),
)
