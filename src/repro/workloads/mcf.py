"""181.mcf analogue: network-simplex style pointer chasing.

The real mcf spends its time dereferencing node/arc structs scattered over
a large heap: reduced-cost computation touches ``arc->tail->potential``
(two-level dereferencing) and tree maintenance chases parent chains.  Both
idioms are reproduced here over a randomly wired forest.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(nodes: int, arcs: int, passes: int, seed: int) -> str:
    cold = coldcode.block("mcf")
    return f"""
struct node {{
    int potential;
    int depth;
    struct node *parent;
    struct node *mark;
}};

struct arc {{
    int cost;
    int flow;
    struct node *tail;
    struct node *head;
}};

struct node **nodes;
struct arc **arcs;
int total;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void build() {{
    int i;
    struct node *n;
    struct arc *a;
    nodes = (struct node**) malloc({nodes} * 4);
    arcs = (struct arc**) malloc({arcs} * 4);
    for (i = 0; i < {nodes}; i = i + 1) {{
        n = (struct node*) malloc(sizeof(struct node));
        n->potential = rand() % 1000;
        n->depth = 0;
        n->parent = NULL;
        nodes[i] = n;
        if (i > 0)
            n->parent = nodes[big_rand() % i];
    }}
    for (i = 0; i < {arcs}; i = i + 1) {{
        a = (struct arc*) malloc(sizeof(struct arc));
        a->cost = rand() % 2000 - 1000;
        a->flow = 0;
        a->tail = nodes[big_rand() % {nodes}];
        a->head = nodes[big_rand() % {nodes}];
        arcs[i] = a;
    }}
}}

void price_pass() {{
    int j;
    int rc;
    struct arc *a;
    for (j = 0; j < {arcs}; j = j + 1) {{
        a = arcs[j];
        rc = a->cost + a->tail->potential - a->head->potential;
        if (rc < 0) {{
        {cold.guard('rc + a->cost', 'j')}
        {cold.warm_guard('rc', 'j')}
            a->flow = a->flow + 1;
            total = total - rc;
            a->head->potential = a->head->potential + 1;
        }}
    }}
}}

void chase_pass() {{
    int i;
    int d;
    struct node *p;
    for (i = 0; i < {nodes}; i = i + 1) {{
        p = nodes[i];
        d = 0;
        while (p->parent != NULL && d < 24) {{
            p = p->parent;
            d = d + 1;
        }}
        nodes[i]->depth = d;
    }}
}}

{cold.functions}

int main() {{
    int pass;
    srand({seed});
    total = 0;
    build();
    for (pass = 0; pass < {passes}; pass = pass + 1) {{
        price_pass();
        chase_pass();
    }}
    print_int(total);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="181.mcf",
    category=TRAINING,
    description="network-simplex pricing: 2-level struct dereferencing "
                "and parent-chain pointer chasing over a large heap",
    source=source,
    inputs=make_inputs(
        {"nodes": 3000, "arcs": 6000, "passes": 6, "seed": 7001},
        {"nodes": 2200, "arcs": 8000, "passes": 5, "seed": 917},
    ),
    scale_keys=("passes",),
)
