"""175.vpr analogue: FPGA placement by simulated annealing.

vpr evaluates bounding-box wiring cost for nets whose terminals live in
block structs, and perturbs placements randomly — indexed struct-array
accesses plus indirection through net terminal lists.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(blocks: int, nets: int, terminals: int, sweeps: int,
           seed: int) -> str:
    cold = coldcode.block("vpr")
    return f"""
struct block {{
    int x;
    int y;
    int kind;
}};

struct net {{
    int cost;
    int *terms;
}};

struct block *blocks_arr;
struct net *nets_arr;
int total_cost;
{cold.declarations}

int big_rand() {{
    return rand() * 32768 + rand();
}}

void build() {{
    int i;
    int t;
    blocks_arr = (struct block*) malloc({blocks} * sizeof(struct block));
    nets_arr = (struct net*) malloc({nets} * sizeof(struct net));
    for (i = 0; i < {blocks}; i = i + 1) {{
        blocks_arr[i].x = rand() % 64;
        blocks_arr[i].y = rand() % 64;
        blocks_arr[i].kind = rand() & 3;
    }}
    for (i = 0; i < {nets}; i = i + 1) {{
        nets_arr[i].terms = (int*) malloc({terminals} * 4);
        for (t = 0; t < {terminals}; t = t + 1)
            nets_arr[i].terms[t] = big_rand() % {blocks};
        nets_arr[i].cost = 0;
    }}
}}

int net_cost(int n) {{
    int t;
    int minx; int maxx; int miny; int maxy;
    int b;
    minx = 1000; maxx = 0 - 1000; miny = 1000; maxy = 0 - 1000;
    for (t = 0; t < {terminals}; t = t + 1) {{
        b = nets_arr[n].terms[t];
        if (blocks_arr[b].x < minx) minx = blocks_arr[b].x;
        if (blocks_arr[b].x > maxx) maxx = blocks_arr[b].x;
        if (blocks_arr[b].y < miny) miny = blocks_arr[b].y;
        if (blocks_arr[b].y > maxy) maxy = blocks_arr[b].y;
    }}
    return (maxx - minx) + (maxy - miny);
}}

{cold.functions}

int main() {{
    int s;
    int n;
    int victim;
    srand({seed});
    build();
    total_cost = 0;
    for (s = 0; s < {sweeps}; s = s + 1) {{
        for (n = 0; n < {nets}; n = n + 1) {{
            nets_arr[n].cost = net_cost(n);
            total_cost = total_cost + nets_arr[n].cost;
            {cold.guard('total_cost + n', 's')}
            {cold.warm_guard('total_cost', 's')}
        }}
        victim = big_rand() % {blocks};
        blocks_arr[victim].x = rand() % 64;
        blocks_arr[victim].y = rand() % 64;
    }}
    print_int(total_cost & 1048575);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="175.vpr",
    category=TRAINING,
    description="placement cost evaluation: net terminal indirection "
                "into a block-struct array",
    source=source,
    inputs=make_inputs(
        {"blocks": 5000, "nets": 2500, "terminals": 5, "sweeps": 8,
         "seed": 175},
        {"blocks": 4000, "nets": 3000, "terminals": 4, "sweeps": 8,
         "seed": 571},
    ),
    scale_keys=("sweeps",),
)
