"""022.li analogue: lisp interpreter cons-cell churn.

xlisp's hot loads chase car/cdr pointers through cons cells allocated all
over the heap: list construction, traversal, reversal and association-
list lookups.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(cells: int, rounds: int, seed: int) -> str:
    cold = coldcode.block("li")
    return f"""
struct cons {{
    int tag;
    int value;
    struct cons *car;
    struct cons *cdr;
}};

struct cons **roots;
int reductions;
{cold.declarations}

{cold.functions}

struct cons *make_cell(int value) {{
    struct cons *c;
    c = (struct cons*) malloc(sizeof(struct cons));
    c->tag = 1;
    c->value = value;
    c->car = NULL;
    c->cdr = NULL;
    return c;
}}

struct cons *build_list(int length, int base) {{
    struct cons *head;
    struct cons *c;
    int i;
    head = NULL;
    for (i = 0; i < length; i = i + 1) {{
        c = make_cell(base + i);
        c->cdr = head;
        head = c;
    }}
    return head;
}}

int sum_list(struct cons *list) {{
    int total;
    total = 0;
    while (list != NULL) {{
        total = total + list->value;
        list = list->cdr;
    }}
    return total;
}}

struct cons *reverse_list(struct cons *list) {{
    struct cons *out;
    struct cons *next;
    out = NULL;
    while (list != NULL) {{
        next = list->cdr;
        list->cdr = out;
        out = list;
        list = next;
    }}
    return out;
}}

struct cons *assoc(struct cons *list, int key) {{
    while (list != NULL) {{
        if (list->value == key)
            return list;
        list = list->cdr;
    }}
    return NULL;
}}

int main() {{
    int r;
    int n_roots;
    int i;
    struct cons *hit;
    srand({seed});
    n_roots = 40;
    roots = (struct cons**) calloc(n_roots, 4);
    reductions = 0;
    for (i = 0; i < n_roots; i = i + 1)
        roots[i] = build_list({cells} / 40, i * 100);
    for (r = 0; r < {rounds}; r = r + 1) {{
        i = rand() % n_roots;
        reductions = reductions + sum_list(roots[i]);
        {cold.guard('reductions', 'r')}
        {cold.warm_guard('reductions >> 1', 'r')}
        roots[i] = reverse_list(roots[i]);
        hit = assoc(roots[i], (i * 100) + (rand() % 50));
        if (hit != NULL)
            reductions = reductions + 1;
    }}
    print_int(reductions & 1048575);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="022.li",
    category=TEST,
    description="lisp cons cells: car/cdr chasing through list sums, "
                "reversals and assoc scans",
    source=source,
    inputs=make_inputs(
        {"cells": 16000, "rounds": 420, "seed": 22},
        {"cells": 12000, "rounds": 480, "seed": 220},
    ),
    scale_keys=("rounds",),
)
