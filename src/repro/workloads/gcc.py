"""126.gcc analogue: expression-tree construction and repeated walks.

gcc's memory behaviour is dominated by tree/rtl node allocation and
traversal: heterogeneous structs, child pointers, and visitation loops —
a large, irregularly linked heap.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TEST, Workload, make_inputs


def source(nodes: int, walks: int, seed: int) -> str:
    cold = coldcode.block("gcc")
    n_stats = 48
    stat_decls = "\n".join(
        f"int stat_{k}; int stat_pad_{k}[7];" for k in range(n_stats))
    tally_chain = "\n".join(
        f"    {'if' if k == 0 else 'else if'} (code == {k}) "
        f"stat_{k} = stat_{k} + 1;"
        for k in range(n_stats))
    return f"""
struct tree {{
    int code;
    int value;
    struct tree *left;
    struct tree *right;
}};

struct tree **pool;
int pool_top;
int folded;
{cold.declarations}

/* per-opcode statistics counters, like real gcc's global bookkeeping:
   plain gp-relative scalar loads that still miss under heap churn */
{stat_decls}

void tally(int code) {{
{tally_chain}
}}

{cold.functions}

struct tree *mknode(int code, int value) {{
    struct tree *t;
    t = (struct tree*) malloc(sizeof(struct tree));
    t->code = code;
    t->value = value;
    t->left = NULL;
    t->right = NULL;
    pool[pool_top] = t;
    pool_top = pool_top + 1;
    return t;
}}

struct tree *random_expr(int depth) {{
    struct tree *t;
    if (depth <= 0 || (rand() & 7) == 0)
        return mknode(0, rand() % 1000);
    t = mknode(1 + rand() % 4, 0);
    t->left = random_expr(depth - 1);
    t->right = random_expr(depth - 1);
    return t;
}}

int eval(struct tree *t) {{
    int a;
    int b;
    tally(t->value & 47);
    if (t->code == 0)
        return t->value;
    a = eval(t->left);
    b = eval(t->right);
    if (t->code == 1)
        return a + b;
    if (t->code == 2)
        return a - b;
    if (t->code == 3)
        return a ^ b;
    return (a & 1023) * (b & 7);
}}

int fold(struct tree *t) {{
    int n;
    if (t->code == 0)
        return 0;
    n = fold(t->left) + fold(t->right);
    if (t->left->code == 0 && t->right->code == 0) {{
        t->value = eval(t);
        t->code = 0;
        n = n + 1;
    }}
    return n;
}}

int main() {{
    int w;
    int total;
    int n_roots;
    int i;
    struct tree **roots;
    srand({seed});
    pool = (struct tree**) malloc({nodes} * 8);
    pool_top = 0;
    folded = 0;
    n_roots = 32;
    roots = (struct tree**) malloc(n_roots * 4);
    for (i = 0; i < n_roots; i = i + 1)
        roots[i] = random_expr(9);
    total = 0;
    for (w = 0; w < {walks}; w = w + 1) {{
        i = rand() % n_roots;
        total = total + eval(roots[i]);
        {cold.guard('total', 'w')}
        {cold.warm_guard('total >> 3', 'w')}
        if ((w & 15) == 0)
            folded = folded + fold(roots[i]);
        if ((w & 63) == 0 && pool_top < {nodes} - 1200)
            roots[i] = random_expr(9);
    }}
    print_int(total & 1048575);
    print_int(folded);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="126.gcc",
    category=TEST,
    description="compiler trees: recursive build, eval and constant-fold "
                "walks over a pointer-linked heap",
    source=source,
    inputs=make_inputs(
        {"nodes": 60000, "walks": 700, "seed": 126},
        {"nodes": 50000, "walks": 800, "seed": 621},
    ),
    scale_keys=("walks",),
)
