"""164.gzip analogue: LZ77 longest-match search over a sliding window.

gzip's hot loop hashes three-byte sequences, then follows ``prev[]``
chains comparing window bytes — byte loads from a 32 KB window plus chain
loads from a table that together exceed L1.
"""

from __future__ import annotations

from repro.workloads import coldcode
from repro.workloads.base import TRAINING, Workload, make_inputs


def source(window_bits: int, input_len: int, max_chain: int,
           seed: int) -> str:
    cold = coldcode.block("gz")
    window_size = 1 << window_bits
    hash_size = 1 << 12
    return f"""
char *window;
int *head;
int *prev;
int match_total;
{cold.declarations}

void fill_window() {{
    int i;
    int value;
    value = rand() & 255;
    for (i = 0; i < {window_size}; i = i + 1) {{
        if ((rand() & 7) == 0)
            value = rand() & 255;
        window[i] = value & 255;
    }}
}}

int hash3(int pos) {{
    int a;
    int b;
    int c;
    a = window[pos];
    b = window[pos + 1];
    c = window[pos + 2];
    return ((a << 7) ^ (b << 3) ^ c) & {hash_size - 1};
}}

int longest_match(int pos, int cur) {{
    int best;
    int length;
    int chain;
    int probe;
    best = 0;
    chain = 0;
    probe = cur;
    while (probe >= 0 && chain < {max_chain}) {{
        length = 0;
        while (length < 64
               && window[probe + length] == window[pos + length]
               && pos + length < {window_size} - 1)
            length = length + 1;
        if (length > best)
            best = length;
        probe = prev[probe & {window_size - 1}];
        chain = chain + 1;
    }}
    return best;
}}

{cold.functions}

int main() {{
    int pos;
    int h;
    int cur;
    srand({seed});
    window = (char*) malloc({window_size} + 64);
    head = (int*) calloc({hash_size}, 4);
    prev = (int*) calloc({window_size}, 4);
    match_total = 0;
    fill_window();
    {{
        int i;
        for (i = 0; i < {hash_size}; i = i + 1)
            head[i] = 0 - 1;
        for (i = 0; i < {window_size}; i = i + 1)
            prev[i] = 0 - 1;
    }}
    for (pos = 0; pos < {input_len}; pos = pos + 1) {{
        int at;
        at = pos & {window_size - 1};
        h = hash3(at);
        {cold.guard('h + pos', 'pos')}
        {cold.warm_guard('h + at', 'pos')}
        cur = head[h];
        if (cur >= 0)
            match_total = match_total + longest_match(at, cur);
        prev[at] = head[h];
        head[h] = at;
    }}
    print_int(match_total);
    return 0;
}}
"""


WORKLOAD = Workload(
    name="164.gzip",
    category=TRAINING,
    description="LZ77 matching: hashed head/prev chain walks plus byte "
                "compares in a 32KB window",
    source=source,
    inputs=make_inputs(
        {"window_bits": 15, "input_len": 8000, "max_chain": 8,
         "seed": 1001},
        {"window_bits": 15, "input_len": 9000, "max_chain": 6,
         "seed": 2002},
    ),
    scale_keys=("input_len",),
)
