"""Single-pass stack-distance sweep engine for LRU cache families.

:func:`~repro.cache.model.simulate_trace_multi` shares the trace decode
across configurations but still keeps per-config hit/miss state, so a
size x associativity sweep costs O(trace x configs).  For LRU caches
the inclusion property collapses most of that work: with a fixed set
mapping (block size + number of sets) an A-way set holds exactly the A
most-recently-used blocks of that set, so an access hits an A-way cache
iff its per-set stack distance is below A — for *every* A at once.

This module replays a trace **once per set mapping**, recording each
access's stack distance into per-PC distance histograms (a
:class:`SweepProfile`).  Any LRU :class:`CacheConfig` whose set mapping
is profiled is then evaluated in O(static instructions) by summing the
``distance >= assoc`` tail of the histogram, producing a
:class:`CacheStats` bit-identical to :func:`simulate_trace`.  Distances
are tracked exactly up to the profile's ``capacity`` (at least
:data:`DEFAULT_CAPACITY`); anything deeper lands in an overflow bin
that is a miss at every associativity the profile serves, so the bound
costs no precision.

:func:`simulate_sweep` is the dispatching entry point: LRU configs are
grouped by block size and served through profiles (all missing set
mappings are computed in one fused pass over the trace, with the decode
and block division shared); FIFO/random policies — and lone LRU configs
that no cached profile already covers — fall back to the
exec-specialized replay.  A :class:`ProfileStore` keeps profiles in a
bounded memory tier keyed by ``(trace digest, block size)`` and
optionally persists them as JSON next to the pipeline's disk cache, so
re-sweeping a known trace with new geometries never touches the trace
again.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Counter as CounterType, Optional, Sequence

from collections import Counter

from repro.cache.config import CacheConfig
from repro.cache.lru import BoundedCache
from repro.cache.model import (CacheStats, TraceSource, _chunk_columns,
                               simulate_trace_multi,
                               source_access_counts)
from repro.machine.trace import (LOAD, PREFETCH, STORE, ChunkStream,
                                 MemoryTrace)

#: Distances are tracked exactly at least up to this associativity.
DEFAULT_CAPACITY = 16

#: Distance bits in a recorded event word (``pc << BITS | distance``).
_DISTANCE_BITS = 10
_DISTANCE_MASK = (1 << _DISTANCE_BITS) - 1

#: Largest associativity the histogram encoding can represent; anything
#: wider is routed to the replay engine.
MAX_SWEEP_ASSOC = _DISTANCE_MASK

_PROFILE_SCHEMA = 1


# -- profiles ----------------------------------------------------------

@dataclass
class GroupProfile:
    """Suffix-summed distance histograms for one set mapping.

    ``load_tail[pc][a]`` is the number of load accesses by ``pc`` whose
    stack distance was >= a (1 <= a <= capacity), i.e. exactly the
    misses of ``pc`` in an a-way cache; likewise for stores, and
    ``prefetch_tail[a]`` counts prefetch fills.
    """

    num_sets: int
    load_tail: dict[int, list[int]] = field(default_factory=dict)
    store_tail: dict[int, list[int]] = field(default_factory=dict)
    prefetch_tail: list[int] = field(default_factory=list)


@dataclass
class SweepProfile:
    """Every profiled set mapping of one (trace, block size) pair."""

    block_size: int
    capacity: int
    groups: dict[int, GroupProfile] = field(default_factory=dict)

    def covers(self, config: CacheConfig) -> bool:
        return (config.block_size == self.block_size
                and config.assoc <= self.capacity
                and config.num_sets in self.groups)

    def evaluate(self, config: CacheConfig,
                 load_accesses: dict[int, int],
                 store_accesses: dict[int, int],
                 prefetch_ops: int) -> CacheStats:
        """O(static instructions) stats for one profiled geometry."""
        group = self.groups[config.num_sets]
        a = config.assoc
        return CacheStats(
            config=config,
            load_accesses=dict(load_accesses),
            load_misses={pc: tail[a] for pc, tail
                         in group.load_tail.items() if tail[a]},
            store_accesses=dict(store_accesses),
            store_misses={pc: tail[a] for pc, tail
                          in group.store_tail.items() if tail[a]},
            prefetch_ops=prefetch_ops,
            prefetch_fills=group.prefetch_tail[a],
        )


def trace_digest(source: TraceSource) -> str:
    """Canonical content hash of a trace or chunk stream.

    Delegates to the rolling per-column scheme
    (:class:`~repro.machine.trace.RollingTraceDigest`), which is
    chunk-boundary-independent — a store-backed stream and the
    materialized trace it was written from share one digest, so profile
    store entries are reusable across both paths.
    """
    if isinstance(source, MemoryTrace):
        return source.digest()
    if isinstance(source, ChunkStream):
        return source.digest
    raise TypeError("trace_digest needs a MemoryTrace or ChunkStream")


# -- the profiling pass ------------------------------------------------
#
# One exec-compiled function per distinct spec tuple, mirroring the
# replay codegen in ``cache.model``: the trace decode and the per-block-
# size division are shared, and each set mapping keeps capped per-set
# recency lists.  A list holds at most ``capacity + 1`` blocks (one
# slot is initially a -1 sentinel so the hot path is a single
# ``ways[0] != block`` compare); a block found at index d has stack
# distance d, a block absent from the list has distance >= capacity.
# Front hits (d = 0) are never recorded — they are hits at every
# associativity — and deeper events append ``pc << BITS | d`` to a flat
# array that is histogrammed at C speed after the pass.

_PASS_CACHE = BoundedCache(32)


def _compile_profile_pass(specs: Sequence[tuple[int, int, int]]):
    """specs: ``(block_size, num_sets, capacity)`` per group."""
    blocks = {bs: f"block{bs}" for bs, _, _ in specs}
    lines = ["def profile_pass(columns):"]
    for index, (_, num_sets, capacity) in enumerate(specs):
        lines += [f"    sets{index} = [[-1] for _ in range({num_sets})]",
                  f"    le{index} = _array('Q')",
                  f"    lea{index} = le{index}.append",
                  f"    se{index} = _array('Q')",
                  f"    sea{index} = se{index}.append",
                  f"    pb{index} = [0] * {capacity + 1}"]
    # Outer chunk loop at indent 4, row loop at indent 6: the per-row
    # body below stays at its materialized-path indentation, so the
    # generated per-access code is textually identical either way and
    # recency state simply persists across chunk boundaries.
    lines.append("    for pcs, addresses, kinds in columns:")
    lines.append("      for pc, address, kind in zip(pcs, addresses,"
                 " kinds):")
    for size, name in blocks.items():
        lines.append(f"        {name} = address // {size}")
    for kind, record in ((LOAD, "lea{i}(pc_d | {d})"),
                         (STORE, "sea{i}(pc_d | {d})"),
                         (PREFETCH, "pb{i}[{d}] += 1")):
        head = "if" if kind == LOAD else "elif"
        lines.append(f"        {head} kind == {kind}:")
        if kind != PREFETCH:
            lines.append(f"            pc_d = pc << {_DISTANCE_BITS}")
        for index, (block_size, num_sets, capacity) in enumerate(specs):
            block = blocks[block_size]
            pad = " " * 12
            lines += [
                f"{pad}ways = sets{index}[{block} & {num_sets - 1}]",
                f"{pad}if ways[0] != {block}:",
                f"{pad}    if {block} in ways:",
                f"{pad}        d = ways.index({block})",
                f"{pad}        del ways[d]",
                f"{pad}        ways.insert(0, {block})",
                f"{pad}        " + record.format(i=index, d="d"),
                f"{pad}    else:",
                f"{pad}        if len(ways) > {capacity}:",
                f"{pad}            ways.pop()",
                f"{pad}        ways.insert(0, {block})",
                f"{pad}        " + record.format(i=index, d=capacity),
            ]
    results = ", ".join(f"(le{i}, se{i}, pb{i})"
                        for i in range(len(specs)))
    lines.append(f"    return [{results}]")
    from array import array
    namespace: dict = {"_array": array}
    exec("\n".join(lines), namespace)  # trusted, generated source
    return namespace["profile_pass"]


def _pass_for(specs: tuple[tuple[int, int, int], ...]):
    fn = _PASS_CACHE.get(specs)
    if fn is None:
        fn = _compile_profile_pass(specs)
        _PASS_CACHE.put(specs, fn)
    return fn


def _tail_histograms(events, capacity: int) -> dict[int, list[int]]:
    """Aggregate recorded events into per-PC suffix-summed histograms."""
    tails: dict[int, list[int]] = {}
    counts: CounterType[int] = Counter(events)
    for word, count in counts.items():
        pc = word >> _DISTANCE_BITS
        tail = tails.get(pc)
        if tail is None:
            tails[pc] = tail = [0] * (capacity + 1)
        tail[word & _DISTANCE_MASK] = count
    for tail in tails.values():
        for d in range(capacity - 1, 0, -1):
            tail[d] += tail[d + 1]
    return tails


def _suffix_sum(bins: list[int]) -> list[int]:
    tail = list(bins)
    for d in range(len(tail) - 2, 0, -1):
        tail[d] += tail[d + 1]
    return tail


def compute_groups(source: TraceSource,
                   specs: Sequence[tuple[int, int, int]]
                   ) -> list[GroupProfile]:
    """One fused pass over a trace source, one profile per spec."""
    specs = tuple(specs)
    raw = _pass_for(specs)(_chunk_columns(source))
    groups = []
    for (_, num_sets, capacity), (loads, stores, pref) in zip(specs, raw):
        groups.append(GroupProfile(
            num_sets=num_sets,
            load_tail=_tail_histograms(loads, capacity),
            store_tail=_tail_histograms(stores, capacity),
            prefetch_tail=_suffix_sum(pref),
        ))
    return groups


# -- the profile store -------------------------------------------------

class ProfileStore:
    """Bounded in-memory profiles over an optional JSON disk tier.

    Entries are keyed by ``(trace digest, block size)``; the disk tier
    lives beside the pipeline's content-hashed result cache (the
    ``stackdist/`` subdirectory) and uses the same atomic-rename,
    corruption-tolerant discipline, so concurrent warm workers and a
    long-lived service can share one warm directory.
    """

    def __init__(self, capacity: int = 8,
                 disk_dir: Optional[Path] = None):
        self._memory = BoundedCache(capacity)
        self.disk_dir = Path(disk_dir) if disk_dir is not None else None
        # Tier-attributed lookup counters, split between the measured
        # sweep (``sd-``) and analytic (``an-``) keyspaces.  Surfaced
        # through the service ``metrics`` op and the campaign engine so
        # cache effectiveness is observable without instrumenting
        # callers.
        self.counters: dict[str, int] = {
            "sweep_memory_hits": 0, "sweep_disk_hits": 0,
            "sweep_misses": 0, "sweep_puts": 0,
            "analytic_memory_hits": 0, "analytic_disk_hits": 0,
            "analytic_misses": 0, "analytic_puts": 0,
        }

    def stats(self) -> dict[str, object]:
        """Counter snapshot plus overall hit rate (JSON-able)."""
        c = self.counters
        hits = (c["sweep_memory_hits"] + c["sweep_disk_hits"]
                + c["analytic_memory_hits"] + c["analytic_disk_hits"])
        lookups = hits + c["sweep_misses"] + c["analytic_misses"]
        snapshot: dict[str, object] = dict(c)
        snapshot["hit_rate"] = round(hits / lookups, 4) if lookups \
            else 0.0
        return snapshot

    def _path(self, digest: str, block_size: int) -> Path:
        return self.disk_dir / f"sd-{digest}-bs{block_size}.json"

    def _analytic_path(self, digest: str, block_size: int) -> Path:
        return self.disk_dir / f"an-{digest}-bs{block_size}.json"

    def get(self, digest: str, block_size: int
            ) -> Optional[SweepProfile]:
        profile = self._memory.get((digest, block_size))
        if profile is not None:
            self.counters["sweep_memory_hits"] += 1
            return profile
        if self.disk_dir is not None:
            profile = self._load_disk(digest, block_size)
            if profile is not None:
                self.counters["sweep_disk_hits"] += 1
                self._memory.put((digest, block_size), profile)
                return profile
        self.counters["sweep_misses"] += 1
        return None

    def put(self, digest: str, block_size: int,
            profile: SweepProfile) -> None:
        self.counters["sweep_puts"] += 1
        self._memory.put((digest, block_size), profile)
        if self.disk_dir is not None:
            from repro.pipeline.session import atomic_write_json
            atomic_write_json(self._path(digest, block_size), {
                "version": _PROFILE_SCHEMA,
                "block_size": profile.block_size,
                "capacity": profile.capacity,
                "groups": {
                    str(g.num_sets): {
                        "load": {str(pc): tail for pc, tail
                                 in g.load_tail.items()},
                        "store": {str(pc): tail for pc, tail
                                  in g.store_tail.items()},
                        "prefetch": g.prefetch_tail,
                    }
                    for g in profile.groups.values()
                },
            })

    # -- the analytic keyspace -----------------------------------------
    #
    # Predicted (trace-free) profiles share the store's memory tier and
    # disk directory but live under their own ``an-`` prefix and their
    # own payload schema: entries are keyed by *program* digest, carry
    # real-valued predicted histograms, and must never shadow or be
    # mistaken for measured ``sd-`` sweep profiles.

    def get_analytic(self, digest: str, block_size: int):
        """A cached :class:`~repro.analytic.engine.AnalyticProfile`."""
        profile = self._memory.get(("analytic", digest, block_size))
        if profile is not None:
            self.counters["analytic_memory_hits"] += 1
            return profile
        if self.disk_dir is not None:
            from repro.analytic.engine import AnalyticProfile
            try:
                payload = json.loads(self._analytic_path(
                    digest, block_size).read_text())
                profile = AnalyticProfile.from_payload(payload)
            except (AttributeError, KeyError, OSError, TypeError,
                    ValueError):
                self.counters["analytic_misses"] += 1
                return None
            self.counters["analytic_disk_hits"] += 1
            self._memory.put(("analytic", digest, block_size), profile)
            return profile
        self.counters["analytic_misses"] += 1
        return None

    def put_analytic(self, digest: str, block_size: int,
                     profile) -> None:
        self.counters["analytic_puts"] += 1
        self._memory.put(("analytic", digest, block_size), profile)
        if self.disk_dir is not None:
            from repro.pipeline.session import atomic_write_json
            atomic_write_json(self._analytic_path(digest, block_size),
                              profile.to_payload())

    def _load_disk(self, digest: str,
                   block_size: int) -> Optional[SweepProfile]:
        try:
            payload = json.loads(self._path(digest,
                                            block_size).read_text())
            if payload.get("version") != _PROFILE_SCHEMA:
                return None
            capacity = int(payload["capacity"])
            groups = {}
            for sets_text, entry in payload["groups"].items():
                num_sets = int(sets_text)
                groups[num_sets] = GroupProfile(
                    num_sets=num_sets,
                    load_tail={int(pc): [int(n) for n in tail]
                               for pc, tail in entry["load"].items()},
                    store_tail={int(pc): [int(n) for n in tail]
                                for pc, tail in entry["store"].items()},
                    prefetch_tail=[int(n) for n in entry["prefetch"]],
                )
            return SweepProfile(block_size=int(payload["block_size"]),
                                capacity=capacity, groups=groups)
        except (AttributeError, KeyError, OSError, TypeError,
                ValueError):
            return None  # absent or corrupt entry: recompute


#: Default store for callers without their own cache directory policy
#: (e.g. the prefetch evaluation harness): memory tier only.
_DEFAULT_STORE = ProfileStore()


# -- the dispatching sweep ---------------------------------------------

def simulate_sweep(source: TraceSource,
                   configs: Sequence[CacheConfig],
                   store: Optional[ProfileStore] = None
                   ) -> list[CacheStats]:
    """Simulate every config with the cheapest exact engine.

    LRU configs are grouped by block size: when a group sweeps more
    geometries than set mappings — or a cached profile already covers it
    — it is served from stack-distance histograms, computing any missing
    set mappings in one fused pass over the trace.  Everything else
    (FIFO/random, lone uncached LRU configs, associativities beyond
    :data:`MAX_SWEEP_ASSOC`) falls back to
    :func:`~repro.cache.model.simulate_trace_multi`.  Either route
    returns :class:`CacheStats` bit-identical to per-config
    :func:`~repro.cache.model.simulate_trace`.

    ``source`` may be a :class:`MemoryTrace` or a re-openable
    :class:`ChunkStream` (the sweep may pass over the access stream more
    than once: the fused profile pass plus the fallback replay).  A
    one-shot chunk iterator is replayed in a single
    :func:`simulate_trace_multi` pass with no profile serving.
    """
    configs = list(configs)
    if not configs:
        return []
    if not isinstance(source, (MemoryTrace, ChunkStream)):
        return simulate_trace_multi(source, configs)
    if store is None:
        store = _DEFAULT_STORE

    by_block: dict[int, list[int]] = {}
    fallback: list[int] = []
    for index, config in enumerate(configs):
        if config.replacement == "lru" and config.assoc <= MAX_SWEEP_ASSOC:
            by_block.setdefault(config.block_size, []).append(index)
        else:
            fallback.append(index)

    digest = trace_digest(source) if by_block else None
    profiled: list[int] = []        # config indices served by profiles
    profiles: dict[int, SweepProfile] = {}
    specs: list[tuple[int, int, int]] = []   # fused pass work list
    for block_size, indices in sorted(by_block.items()):
        geometries = {(configs[i].num_sets, configs[i].assoc)
                      for i in indices}
        needed_sets = {s for s, _ in geometries}
        needed_cap = max(a for _, a in geometries)
        profile = store.get(digest, block_size)
        if profile is not None and profile.capacity < needed_cap:
            profile = None          # too shallow: rebuild at new depth
        if profile is None and len(geometries) <= len(needed_sets):
            # no sharing to exploit and nothing cached: replay wins
            fallback.extend(indices)
            continue
        if profile is None:
            profile = SweepProfile(
                block_size=block_size,
                capacity=max(DEFAULT_CAPACITY, needed_cap))
        profiles[block_size] = profile
        profiled.extend(indices)
        specs.extend((block_size, num_sets, profile.capacity)
                     for num_sets in sorted(needed_sets
                                            - profile.groups.keys()))

    if specs:
        for (block_size, num_sets, _), group in zip(
                specs, compute_groups(source, specs)):
            profiles[block_size].groups[num_sets] = group
        for block_size in sorted({bs for bs, _, _ in specs}):
            store.put(digest, block_size, profiles[block_size])

    results: dict[int, CacheStats] = {}
    if profiled:
        (load_accesses, store_accesses,
         prefetch_ops) = source_access_counts(source)
        for index in profiled:
            config = configs[index]
            results[index] = profiles[config.block_size].evaluate(
                config, load_accesses, store_accesses, prefetch_ops)
    if fallback:
        for index, stats in zip(
                fallback,
                simulate_trace_multi(source,
                                     [configs[i] for i in fallback])):
            results[index] = stats
    return [results[index] for index in range(len(configs))]
