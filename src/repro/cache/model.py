"""Set-associative data-cache simulator.

Replays an access stream and produces per-static-instruction hit/miss
counters — M(i, C) in the paper's notation — which the training
formulae, the metrics (rho, ideal-Delta) and Table 2 all consume.

The cache is write-allocate (stores fetch the block on miss), with LRU,
FIFO or pseudo-random replacement.  One trace can be replayed under many
configurations; execution and cache simulation are deliberately decoupled.

Every replay entry point accepts either a materialized
:class:`~repro.machine.trace.MemoryTrace` or a chunked source (a
:class:`~repro.machine.trace.ChunkStream` or any iterable of
:class:`~repro.machine.trace.TraceChunk`): cache state folds over the
chunk sequence exactly as it folds over the monolithic columns, so the
two shapes are bit-identical by construction and out-of-core traces
replay with bounded RSS.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Sequence, Union

from repro.cache.config import CacheConfig
from repro.cache.lru import BoundedCache
from repro.machine.trace import (LOAD, PREFETCH, STORE, ChunkStream,
                                 MemoryTrace, TraceChunk)

#: Anything the replay engines can consume.
TraceSource = Union[MemoryTrace, ChunkStream, Iterable[TraceChunk]]


@dataclass
class CacheStats:
    """Per-PC and aggregate results of one trace replay."""

    config: CacheConfig
    load_accesses: dict[int, int] = field(default_factory=dict)
    load_misses: dict[int, int] = field(default_factory=dict)
    store_accesses: dict[int, int] = field(default_factory=dict)
    store_misses: dict[int, int] = field(default_factory=dict)
    prefetch_ops: int = 0
    prefetch_fills: int = 0          # prefetches that brought a new block

    # -- aggregates ----------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return (sum(self.load_accesses.values())
                + sum(self.store_accesses.values()))

    @property
    def total_load_accesses(self) -> int:
        return sum(self.load_accesses.values())

    @property
    def total_load_misses(self) -> int:
        """M(P(I), C): total misses attributable to load instructions.

        The paper's Delta sets contain only loads, so coverage rho is
        defined over load misses; store misses are tracked separately.
        """
        return sum(self.load_misses.values())

    @property
    def total_store_misses(self) -> int:
        return sum(self.store_misses.values())

    def misses_of(self, pcs) -> int:
        """M(S, C) for a set of static load addresses."""
        load_misses = self.load_misses
        return sum(load_misses.get(pc, 0) for pc in pcs)

    def miss_rate(self) -> float:
        accesses = self.total_accesses
        if accesses == 0:
            return 0.0
        return (self.total_load_misses + self.total_store_misses) / accesses

    def loads_by_misses(self) -> list[tuple[int, int]]:
        """Static loads sorted by descending miss count: (pc, misses)."""
        return sorted(self.load_misses.items(),
                      key=lambda item: (-item[1], item[0]))


class Cache:
    """One set-associative cache instance.

    Geometry and policy are hoisted into instance attributes at
    construction: the seed implementation recomputed the ``num_sets``
    property (an integer division) and compared the replacement string
    on every access, which dominated :meth:`access` time.
    """

    def __init__(self, config: CacheConfig):
        self.config = config
        self._block_size = config.block_size
        self._set_mask = config.num_sets - 1
        self._assoc = config.assoc
        self._lru = config.replacement == "lru"
        self._random = config.replacement == "random"
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        # deterministic pseudo-random victims, seeded by the config
        self._rng_state = config.rng_seed

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self._rng_state = self.config.rng_seed

    def access(self, address: int) -> bool:
        """Touch ``address``; return True on hit."""
        block = address // self._block_size
        ways = self._sets[block & self._set_mask]
        if block in ways:
            if self._lru and ways[0] != block:
                ways.remove(block)
                ways.insert(0, block)
            return True
        self._insert(ways, block)
        return False

    def _insert(self, ways: list[int], block: int) -> None:
        if len(ways) >= self._assoc:
            if self._random:
                self._rng_state = (self._rng_state * 1103515245 + 12345) \
                    & 0x7FFF_FFFF
                ways.pop(self._rng_state % len(ways))
            else:  # lru and fifo both evict the tail
                ways.pop()
        ways.insert(0, block)

    def contains(self, address: int) -> bool:
        block = address // self._block_size
        return block in self._sets[block & self._set_mask]


def _chunk_columns(source: TraceSource
                   ) -> Iterator[tuple]:
    """Yield ``(pcs, addresses, kinds)`` column triples for ``source``.

    A materialized trace is a single triple (the monolithic columns —
    no slicing, no copies); a chunked source yields one triple per
    chunk.  Replay state folds across the triples, so consumers see the
    same access sequence either way.
    """
    if isinstance(source, MemoryTrace):
        yield source.pcs, source.addresses, source.kinds
        return
    for chunk in source:
        yield chunk.pcs, chunk.addresses, chunk.kinds


#: Public spelling of the column iterator for the scenario families
#: (``repro.tlb``, ``repro.redundancy``): any analysis that folds state
#: over the access sequence should consume this, never the raw chunks,
#: so materialized and streamed inputs stay bit-identical by
#: construction.
chunk_columns = _chunk_columns


class _AccessTally:
    """Per-PC access counts accumulated while chunks flow past.

    One-shot chunk iterators cannot be rescanned after the replay, so
    the counting work :func:`shared_access_counts` does for materialized
    traces happens inline: wrap the column feed with :meth:`feed`, then
    read the totals after the replay has drained it.
    """

    def __init__(self):
        self.counts: Counter = Counter()
        self.kind_of: dict[int, int] = {}
        self.prefetch_ops = 0

    def feed(self, columns: Iterable[tuple]) -> Iterator[tuple]:
        for pcs, addresses, kinds in columns:
            self.counts.update(pcs)
            self.kind_of.update(zip(pcs, kinds))
            self.prefetch_ops += kinds.count(PREFETCH)
            yield pcs, addresses, kinds

    def access_counts(self) -> tuple[dict[int, int], dict[int, int]]:
        load_accesses: dict[int, int] = {}
        store_accesses: dict[int, int] = {}
        kind_of = self.kind_of
        for pc, count in self.counts.items():
            kind = kind_of[pc]
            if kind == LOAD:
                load_accesses[pc] = count
            elif kind != PREFETCH:
                store_accesses[pc] = count
        return load_accesses, store_accesses


def source_access_counts(source: TraceSource
                         ) -> tuple[dict[int, int], dict[int, int], int]:
    """Per-PC (load, store) access counts and the prefetch total.

    Materialized traces use the memoized column scan; streams answer
    from producer metadata (store-backed streams record the counts at
    write time) or one counting pass.
    """
    if isinstance(source, MemoryTrace):
        load_accesses, store_accesses = shared_access_counts(source)
        return load_accesses, store_accesses, source.prefetch_count
    if isinstance(source, ChunkStream):
        return source.access_counts()
    tally = _AccessTally()
    for _ in tally.feed(_chunk_columns(source)):
        pass
    load_accesses, store_accesses = tally.access_counts()
    return load_accesses, store_accesses, tally.prefetch_ops


def simulate_trace(source: TraceSource, config: CacheConfig) -> CacheStats:
    """Replay an access stream through a cold cache of ``config``."""
    num_sets = config.num_sets
    set_mask = num_sets - 1
    block_size = config.block_size
    assoc = config.assoc
    replacement = config.replacement
    lru = replacement == "lru"
    random_policy = replacement == "random"
    rng_state = config.rng_seed

    sets: list[list[int]] = [[] for _ in range(num_sets)]
    load_accesses: dict[int, int] = defaultdict(int)
    load_misses: dict[int, int] = defaultdict(int)
    store_accesses: dict[int, int] = defaultdict(int)
    store_misses: dict[int, int] = defaultdict(int)
    prefetch_ops = 0
    prefetch_fills = 0

    load_kind, prefetch_kind = LOAD, PREFETCH  # hoisted global loads
    for pcs, addresses, kinds in _chunk_columns(source):
        for pc, address, kind in zip(pcs, addresses, kinds):
            block = address // block_size
            ways = sets[block & set_mask]
            if block in ways:
                hit = True
                if lru and ways[0] != block:
                    ways.remove(block)
                    ways.insert(0, block)
            else:
                hit = False
                if len(ways) >= assoc:
                    if random_policy:
                        rng_state = (rng_state * 1103515245 + 12345) \
                            & 0x7FFF_FFFF
                        ways.pop(rng_state % len(ways))
                    else:
                        ways.pop()
                ways.insert(0, block)
            if kind == load_kind:
                load_accesses[pc] += 1
                if not hit:
                    load_misses[pc] += 1
            elif kind == prefetch_kind:
                prefetch_ops += 1
                if not hit:
                    prefetch_fills += 1
            else:
                store_accesses[pc] += 1
                if not hit:
                    store_misses[pc] += 1

    return CacheStats(
        config=config,
        load_accesses=dict(load_accesses),
        load_misses=dict(load_misses),
        store_accesses=dict(store_accesses),
        store_misses=dict(store_misses),
        prefetch_ops=prefetch_ops,
        prefetch_fills=prefetch_fills,
    )


# -- single-pass multi-configuration replay ---------------------------
#
# The experiment engine's hot path.  A replay function specialized to
# the exact config list is generated and exec-compiled once per distinct
# geometry tuple (mirroring the simulator's "pre-compile each
# instruction to a closure" idiom): geometry constants are folded into
# the bytecode, the trace decode and kind dispatch are shared across all
# configs, distinct block sizes are divided once per access, and misses
# are recorded through bound ``list.append``s and aggregated with
# ``collections.Counter`` (C speed) after the pass.  The replacement
# logic is emitted verbatim from :func:`simulate_trace`'s loop, so the
# per-config results — including the pseudo-random victim sequence —
# are bit-identical to per-config replays.


def _emit_cache_update(tag: str, config: CacheConfig, block_var: str,
                       miss_lines: Sequence[str],
                       indent: int) -> list[str]:
    """Emit one cache's per-access update at ``indent``.

    ``miss_lines`` (relative indentation, possibly a nested update for
    a second-level cache) are placed in the miss branch after the fill.
    """
    pad = " " * indent
    set_mask = config.num_sets - 1
    lines = [f"{pad}ways = sets{tag}[{block_var} & {set_mask}]",
             f"{pad}if {block_var} in ways:"]
    if config.replacement == "lru":
        lines += [f"{pad}    if ways[0] != {block_var}:",
                  f"{pad}        ways.remove({block_var})",
                  f"{pad}        ways.insert(0, {block_var})"]
    else:
        lines.append(f"{pad}    pass")
    lines.append(f"{pad}else:")
    lines.append(f"{pad}    if len(ways) >= {config.assoc}:")
    if config.replacement == "random":
        lines += [f"{pad}        rng{tag} = (rng{tag} * 1103515245"
                  f" + 12345) & 0x7FFFFFFF",
                  f"{pad}        ways.pop(rng{tag} % len(ways))"]
    else:
        lines.append(f"{pad}        ways.pop()")
    lines.append(f"{pad}    ways.insert(0, {block_var})")
    lines += [f"{pad}    {line}" for line in miss_lines]
    return lines


def _emit_cache_state(tag: str, config: CacheConfig) -> list[str]:
    lines = [f"    sets{tag} = [[] for _ in range({config.num_sets})]"]
    if config.replacement == "random":
        lines.append(f"    rng{tag} = {config.rng_seed:#x}")
    return lines


def _block_vars(configs: Sequence[CacheConfig]) -> dict[int, str]:
    """One ``block = address // size`` variable per distinct size."""
    return {config.block_size: f"block{config.block_size}"
            for config in configs}


def _compile_replay(configs: Sequence[CacheConfig]):
    """Build ``replay(columns) -> [(lm, sm, fills), ...]``.

    ``columns`` is an iterable of ``(pcs, addresses, kinds)`` triples
    (one for a materialized trace, one per chunk for a stream); all
    cache state lives in locals and folds across the triples, so chunk
    boundaries are invisible to the replay semantics.
    """
    blocks = _block_vars(configs)
    lines = ["def replay(columns):"]
    for index, config in enumerate(configs):
        lines += _emit_cache_state(str(index), config)
        lines += [f"    lm{index} = []",
                  f"    lma{index} = lm{index}.append",
                  f"    sm{index} = []",
                  f"    sma{index} = sm{index}.append",
                  f"    fills{index} = 0"]
    lines.append("    for pcs, addresses, kinds in columns:")
    lines.append("      for pc, address, kind in zip(pcs, addresses,"
                 " kinds):")
    for size, name in blocks.items():
        lines.append(f"        {name} = address // {size}")
    for kind, miss in ((LOAD, "lma{i}(pc)"), (STORE, "sma{i}(pc)"),
                       (PREFETCH, "fills{i} += 1")):
        head = "if" if kind == LOAD else "elif"
        lines.append(f"        {head} kind == {kind}:")
        for index, config in enumerate(configs):
            lines += _emit_cache_update(
                str(index), config, blocks[config.block_size],
                [miss.format(i=index)], 12)
    results = ", ".join(f"(lm{i}, sm{i}, fills{i})"
                        for i in range(len(configs)))
    lines.append(f"    return [{results}]")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # trusted, generated source
    return namespace["replay"]


_REPLAY_CACHE = BoundedCache(64)


def _replay_for(configs: Sequence[CacheConfig]):
    key = tuple((c.num_sets, c.assoc, c.block_size, c.replacement,
                 c.rng_seed)
                for c in configs)
    replay = _REPLAY_CACHE.get(key)
    if replay is None:
        replay = _compile_replay(configs)
        _REPLAY_CACHE.put(key, replay)
    return replay


def shared_access_counts(trace: MemoryTrace
                         ) -> tuple[dict[int, int], dict[int, int]]:
    """Per-PC (load, store) access counts, shared by every config.

    A static PC has a single access kind, so the counts reduce to one
    C-speed ``Counter`` over the PC column plus a kind lookup table.
    The result is memoized on the trace (every consumer copies the
    dicts into its ``CacheStats``), so a histogram-served re-sweep
    never rescans the columns.
    """
    memo = getattr(trace, "_access_counts", None)
    if memo is not None and memo[0] == len(trace):
        return memo[1], memo[2]
    kind_of = dict(zip(trace.pcs, trace.kinds))
    counts = Counter(trace.pcs)
    load_accesses: dict[int, int] = {}
    store_accesses: dict[int, int] = {}
    for pc, count in counts.items():
        kind = kind_of[pc]
        if kind == LOAD:
            load_accesses[pc] = count
        elif kind != PREFETCH:
            store_accesses[pc] = count
    trace._access_counts = (len(trace), load_accesses, store_accesses)
    return load_accesses, store_accesses


def simulate_trace_multi(source: TraceSource,
                         configs: Sequence[CacheConfig]
                         ) -> list[CacheStats]:
    """Replay an access stream once through N cold caches.

    Produces bit-identical results to N separate :func:`simulate_trace`
    calls while paying the trace decode, the kind dispatch, the block
    division (per distinct block size) and the per-PC *access* counting
    — all config-independent — only once; only the hit/miss state is
    per-config.  Chunked sources replay with bounded RSS; when the
    stream carries no producer-recorded counts, the access tally rides
    the same single pass.
    """
    configs = list(configs)
    if not configs:
        return []
    replay = _replay_for(configs)
    if isinstance(source, MemoryTrace):
        raw = replay(_chunk_columns(source))
        load_accesses, store_accesses = shared_access_counts(source)
        prefetch_ops = source.prefetch_count
    elif (isinstance(source, ChunkStream)
          and source._load_accesses is not None):
        raw = replay(_chunk_columns(source))
        load_accesses, store_accesses, prefetch_ops = \
            source.access_counts()
    else:
        tally = _AccessTally()
        raw = replay(tally.feed(_chunk_columns(source)))
        load_accesses, store_accesses = tally.access_counts()
        prefetch_ops = tally.prefetch_ops
    return [
        CacheStats(
            config=config,
            load_accesses=dict(load_accesses),
            load_misses=dict(Counter(load_miss_pcs)),
            store_accesses=dict(store_accesses),
            store_misses=dict(Counter(store_miss_pcs)),
            prefetch_ops=prefetch_ops,
            prefetch_fills=fills,
        )
        for config, (load_miss_pcs, store_miss_pcs, fills)
        in zip(configs, raw)
    ]
