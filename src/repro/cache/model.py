"""Set-associative data-cache simulator.

Replays a :class:`~repro.machine.trace.MemoryTrace` and produces per-static-
instruction hit/miss counters — M(i, C) in the paper's notation — which the
training formulae, the metrics (rho, ideal-Delta) and Table 2 all consume.

The cache is write-allocate (stores fetch the block on miss), with LRU,
FIFO or pseudo-random replacement.  One trace can be replayed under many
configurations; execution and cache simulation are deliberately decoupled.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cache.config import CacheConfig
from repro.machine.trace import LOAD, PREFETCH, MemoryTrace


@dataclass
class CacheStats:
    """Per-PC and aggregate results of one trace replay."""

    config: CacheConfig
    load_accesses: dict[int, int] = field(default_factory=dict)
    load_misses: dict[int, int] = field(default_factory=dict)
    store_accesses: dict[int, int] = field(default_factory=dict)
    store_misses: dict[int, int] = field(default_factory=dict)
    prefetch_ops: int = 0
    prefetch_fills: int = 0          # prefetches that brought a new block

    # -- aggregates ----------------------------------------------------
    @property
    def total_accesses(self) -> int:
        return (sum(self.load_accesses.values())
                + sum(self.store_accesses.values()))

    @property
    def total_load_accesses(self) -> int:
        return sum(self.load_accesses.values())

    @property
    def total_load_misses(self) -> int:
        """M(P(I), C): total misses attributable to load instructions.

        The paper's Delta sets contain only loads, so coverage rho is
        defined over load misses; store misses are tracked separately.
        """
        return sum(self.load_misses.values())

    @property
    def total_store_misses(self) -> int:
        return sum(self.store_misses.values())

    def misses_of(self, pcs) -> int:
        """M(S, C) for a set of static load addresses."""
        load_misses = self.load_misses
        return sum(load_misses.get(pc, 0) for pc in pcs)

    def miss_rate(self) -> float:
        accesses = self.total_accesses
        if accesses == 0:
            return 0.0
        return (self.total_load_misses + self.total_store_misses) / accesses

    def loads_by_misses(self) -> list[tuple[int, int]]:
        """Static loads sorted by descending miss count: (pc, misses)."""
        return sorted(self.load_misses.items(),
                      key=lambda item: (-item[1], item[0]))


class Cache:
    """One set-associative cache instance."""

    def __init__(self, config: CacheConfig):
        self.config = config
        self._sets: list[list[int]] = [[] for _ in range(config.num_sets)]
        self._rng_state = 0x2545F491  # deterministic pseudo-random victims

    def reset(self) -> None:
        for ways in self._sets:
            ways.clear()
        self._rng_state = 0x2545F491

    def access(self, address: int) -> bool:
        """Touch ``address``; return True on hit."""
        config = self.config
        block = address // config.block_size
        ways = self._sets[block & (config.num_sets - 1)]
        if block in ways:
            if config.replacement == "lru" and ways[0] != block:
                ways.remove(block)
                ways.insert(0, block)
            return True
        self._insert(ways, block)
        return False

    def _insert(self, ways: list[int], block: int) -> None:
        config = self.config
        if len(ways) >= config.assoc:
            if config.replacement == "random":
                self._rng_state = (self._rng_state * 1103515245 + 12345) \
                    & 0x7FFF_FFFF
                ways.pop(self._rng_state % len(ways))
            else:  # lru and fifo both evict the tail
                ways.pop()
        ways.insert(0, block)

    def contains(self, address: int) -> bool:
        config = self.config
        block = address // config.block_size
        return block in self._sets[block & (config.num_sets - 1)]


def simulate_trace(trace: MemoryTrace, config: CacheConfig) -> CacheStats:
    """Replay ``trace`` through a cold cache of geometry ``config``."""
    num_sets = config.num_sets
    set_mask = num_sets - 1
    block_size = config.block_size
    assoc = config.assoc
    replacement = config.replacement
    lru = replacement == "lru"
    random_policy = replacement == "random"
    rng_state = 0x2545F491

    sets: list[list[int]] = [[] for _ in range(num_sets)]
    load_accesses: dict[int, int] = defaultdict(int)
    load_misses: dict[int, int] = defaultdict(int)
    store_accesses: dict[int, int] = defaultdict(int)
    store_misses: dict[int, int] = defaultdict(int)
    prefetch_ops = 0
    prefetch_fills = 0

    for pc, address, kind in zip(trace.pcs, trace.addresses, trace.kinds):
        block = address // block_size
        ways = sets[block & set_mask]
        if block in ways:
            hit = True
            if lru and ways[0] != block:
                ways.remove(block)
                ways.insert(0, block)
        else:
            hit = False
            if len(ways) >= assoc:
                if random_policy:
                    rng_state = (rng_state * 1103515245 + 12345) & 0x7FFF_FFFF
                    ways.pop(rng_state % len(ways))
                else:
                    ways.pop()
            ways.insert(0, block)
        if kind == LOAD:
            load_accesses[pc] += 1
            if not hit:
                load_misses[pc] += 1
        elif kind == PREFETCH:
            prefetch_ops += 1
            if not hit:
                prefetch_fills += 1
        else:
            store_accesses[pc] += 1
            if not hit:
                store_misses[pc] += 1

    return CacheStats(
        config=config,
        load_accesses=dict(load_accesses),
        load_misses=dict(load_misses),
        store_accesses=dict(store_accesses),
        store_misses=dict(store_misses),
        prefetch_ops=prefetch_ops,
        prefetch_fills=prefetch_fills,
    )
