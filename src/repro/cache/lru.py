"""Bounded mapping with ordered LRU eviction.

Shared by the compiled-replay caches (:mod:`repro.cache.model`,
:mod:`repro.cache.hierarchy`) and the stack-distance profile store
(:mod:`repro.cache.stackdist`).  Lookups refresh the entry and inserts
evict only the least-recently-used entry once ``capacity`` is exceeded
— replacing the earlier wholesale ``clear()`` backstop, which threw
away every compiled replay function the moment the cache filled.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Any, Hashable, Optional


class BoundedCache:
    """An ordered dict that keeps at most ``capacity`` entries."""

    def __init__(self, capacity: int):
        self.capacity = max(1, capacity)
        self.evictions = 0
        self._entries: OrderedDict[Hashable, Any] = OrderedDict()

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, key: Hashable) -> bool:
        return key in self._entries

    def get(self, key: Hashable, default: Any = None) -> Optional[Any]:
        entries = self._entries
        if key not in entries:
            return default
        entries.move_to_end(key)
        return entries[key]

    def put(self, key: Hashable, value: Any) -> None:
        entries = self._entries
        entries[key] = value
        entries.move_to_end(key)
        while len(entries) > self.capacity:
            entries.popitem(last=False)
            self.evictions += 1

    def clear(self) -> None:
        self._entries.clear()
