"""Two-level cache hierarchy (extension).

The paper evaluates L1 data-cache misses only; this extension adds an L2
behind the L1 so the question "do statically identified delinquent loads
also dominate the *L2* miss stream (the truly expensive events)?" can be
answered — see the hierarchy ablation bench.

Model: L1 lookup first; on an L1 miss the L2 is consulted and the block
is filled into both levels (inclusive fill, independent replacement
state, write-allocate at both levels).
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field
from typing import Sequence

from repro.cache.config import CacheConfig
from repro.cache.lru import BoundedCache
from repro.cache.model import (Cache, TraceSource, _AccessTally,
                               _block_vars, _chunk_columns,
                               _emit_cache_state, _emit_cache_update,
                               source_access_counts)
from repro.machine.trace import LOAD, ChunkStream, MemoryTrace


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of a two-level data-cache hierarchy."""

    l1: CacheConfig = CacheConfig(size=8 * 1024, assoc=4, block_size=32)
    l2: CacheConfig = CacheConfig(size=128 * 1024, assoc=8,
                                  block_size=64)

    def __post_init__(self) -> None:
        if self.l2.size < self.l1.size:
            raise ValueError("L2 smaller than L1")
        if self.l2.block_size < self.l1.block_size:
            raise ValueError("L2 block smaller than L1 block")

    def describe(self) -> str:
        return f"L1[{self.l1.describe()}] + L2[{self.l2.describe()}]"


DEFAULT_HIERARCHY = HierarchyConfig()


@dataclass
class HierarchyStats:
    """Per-PC results of one trace replay through both levels."""

    config: HierarchyConfig
    load_accesses: dict[int, int] = field(default_factory=dict)
    l1_load_misses: dict[int, int] = field(default_factory=dict)
    l2_load_misses: dict[int, int] = field(default_factory=dict)
    store_accesses: int = 0
    l1_store_misses: int = 0
    l2_store_misses: int = 0

    @property
    def total_l1_load_misses(self) -> int:
        return sum(self.l1_load_misses.values())

    @property
    def total_l2_load_misses(self) -> int:
        return sum(self.l2_load_misses.values())

    def l2_miss_coverage(self, delta: set[int]) -> float:
        """Share of L2 load misses caused by members of ``delta``."""
        total = self.total_l2_load_misses
        if total == 0:
            return 0.0
        covered = sum(self.l2_load_misses.get(pc, 0) for pc in delta)
        return covered / total


def simulate_trace_hierarchy(source: TraceSource,
                             config: HierarchyConfig = DEFAULT_HIERARCHY
                             ) -> HierarchyStats:
    """Replay a trace source through a cold two-level hierarchy."""
    l1_access = Cache(config.l1).access
    l2_access = Cache(config.l2).access
    load_accesses: dict[int, int] = defaultdict(int)
    l1_misses: dict[int, int] = defaultdict(int)
    l2_misses: dict[int, int] = defaultdict(int)
    store_accesses = 0
    l1_store_misses = 0
    l2_store_misses = 0

    for pcs, addresses, kinds in _chunk_columns(source):
        for pc, address, kind in zip(pcs, addresses, kinds):
            l1_hit = l1_access(address)
            l2_hit = True
            if not l1_hit:
                l2_hit = l2_access(address)
            if kind == LOAD:
                load_accesses[pc] += 1
                if not l1_hit:
                    l1_misses[pc] += 1
                    if not l2_hit:
                        l2_misses[pc] += 1
            else:
                store_accesses += 1
                if not l1_hit:
                    l1_store_misses += 1
                    if not l2_hit:
                        l2_store_misses += 1

    return HierarchyStats(
        config=config,
        load_accesses=dict(load_accesses),
        l1_load_misses=dict(l1_misses),
        l2_load_misses=dict(l2_misses),
        store_accesses=store_accesses,
        l1_store_misses=l1_store_misses,
        l2_store_misses=l2_store_misses,
    )


def _compile_hierarchy_replay(configs: Sequence[HierarchyConfig]):
    """Generate a single-pass replay over N two-level hierarchies.

    Same code-generation scheme as ``model._compile_replay``; the L2
    update is emitted *inside* the L1 miss branch, matching the
    fill-into-both-levels model of :func:`simulate_trace_hierarchy`.
    """
    flat = [c for pair in configs for c in (pair.l1, pair.l2)]
    blocks = _block_vars(flat)
    lines = ["def replay(columns):"]
    for index, config in enumerate(configs):
        lines += _emit_cache_state(f"{index}a", config.l1)
        lines += _emit_cache_state(f"{index}b", config.l2)
        lines += [f"    l1m{index} = []",
                  f"    l1ma{index} = l1m{index}.append",
                  f"    l2m{index} = []",
                  f"    l2ma{index} = l2m{index}.append",
                  f"    s1_{index} = 0",
                  f"    s2_{index} = 0"]
    # Chunk loop at indent 4, row loop at indent 6: per-access code
    # below keeps its materialized-path indentation, cache state folds
    # across chunk boundaries in the function locals.
    lines.append("    for pcs, addresses, kinds in columns:")
    lines.append("      for pc, address, kind in zip(pcs, addresses,"
                 " kinds):")
    for size, name in blocks.items():
        lines.append(f"        {name} = address // {size}")
    lines.append(f"        if kind == {LOAD}:")
    for index, config in enumerate(configs):
        inner = _emit_cache_update(f"{index}b", config.l2,
                                   blocks[config.l2.block_size],
                                   [f"l2ma{index}(pc)"], 0)
        lines += _emit_cache_update(f"{index}a", config.l1,
                                    blocks[config.l1.block_size],
                                    [f"l1ma{index}(pc)"] + inner, 12)
    lines.append("        else:")
    for index, config in enumerate(configs):
        inner = _emit_cache_update(f"{index}b", config.l2,
                                   blocks[config.l2.block_size],
                                   [f"s2_{index} += 1"], 0)
        lines += _emit_cache_update(f"{index}a", config.l1,
                                    blocks[config.l1.block_size],
                                    [f"s1_{index} += 1"] + inner, 12)
    results = ", ".join(f"(l1m{i}, l2m{i}, s1_{i}, s2_{i})"
                        for i in range(len(configs)))
    lines.append(f"    return [{results}]")
    namespace: dict = {}
    exec("\n".join(lines), namespace)  # trusted, generated source
    return namespace["replay"]


_HIERARCHY_REPLAY_CACHE = BoundedCache(64)


def simulate_trace_hierarchy_multi(source: TraceSource,
                                   configs: Sequence[HierarchyConfig]
                                   ) -> list[HierarchyStats]:
    """Replay a trace source once through N cold two-level hierarchies.

    Single-pass counterpart of :func:`simulate_trace_hierarchy`: the
    trace decode, kind dispatch, block division and per-PC load-access
    counting happen once; per-config state is the two levels' sets and
    miss recorders.  Results are bit-identical to N separate calls.
    """
    configs = list(configs)
    if not configs:
        return []
    key = tuple((c.num_sets, c.assoc, c.block_size, c.replacement,
                 c.rng_seed)
                for pair in configs for c in (pair.l1, pair.l2))
    replay = _HIERARCHY_REPLAY_CACHE.get(key)
    if replay is None:
        replay = _compile_hierarchy_replay(configs)
        _HIERARCHY_REPLAY_CACHE.put(key, replay)
    if isinstance(source, MemoryTrace) or (
            isinstance(source, ChunkStream)
            and source._load_accesses is not None):
        raw = replay(_chunk_columns(source))
        load_accesses, stores, prefetch_ops = \
            source_access_counts(source)
    else:
        # One-shot (or metadata-less) stream: tally inline so the
        # replay pass is the only pass.
        tally = _AccessTally()
        raw = replay(tally.feed(_chunk_columns(source)))
        load_accesses, stores = tally.access_counts()
        prefetch_ops = tally.prefetch_ops
    # The hierarchy model routes every non-load access down the store
    # path, so its store total includes prefetch records.
    store_accesses = sum(stores.values()) + prefetch_ops
    return [
        HierarchyStats(
            config=config,
            load_accesses=dict(load_accesses),
            l1_load_misses=dict(Counter(l1_miss_pcs)),
            l2_load_misses=dict(Counter(l2_miss_pcs)),
            store_accesses=store_accesses,
            l1_store_misses=l1_stores,
            l2_store_misses=l2_stores,
        )
        for config, (l1_miss_pcs, l2_miss_pcs, l1_stores, l2_stores)
        in zip(configs, raw)
    ]
