"""Two-level cache hierarchy (extension).

The paper evaluates L1 data-cache misses only; this extension adds an L2
behind the L1 so the question "do statically identified delinquent loads
also dominate the *L2* miss stream (the truly expensive events)?" can be
answered — see the hierarchy ablation bench.

Model: L1 lookup first; on an L1 miss the L2 is consulted and the block
is filled into both levels (inclusive fill, independent replacement
state, write-allocate at both levels).
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.cache.config import CacheConfig
from repro.cache.model import Cache
from repro.machine.trace import LOAD, MemoryTrace


@dataclass(frozen=True)
class HierarchyConfig:
    """Geometry of a two-level data-cache hierarchy."""

    l1: CacheConfig = CacheConfig(size=8 * 1024, assoc=4, block_size=32)
    l2: CacheConfig = CacheConfig(size=128 * 1024, assoc=8,
                                  block_size=64)

    def __post_init__(self) -> None:
        if self.l2.size < self.l1.size:
            raise ValueError("L2 smaller than L1")
        if self.l2.block_size < self.l1.block_size:
            raise ValueError("L2 block smaller than L1 block")

    def describe(self) -> str:
        return f"L1[{self.l1.describe()}] + L2[{self.l2.describe()}]"


DEFAULT_HIERARCHY = HierarchyConfig()


@dataclass
class HierarchyStats:
    """Per-PC results of one trace replay through both levels."""

    config: HierarchyConfig
    load_accesses: dict[int, int] = field(default_factory=dict)
    l1_load_misses: dict[int, int] = field(default_factory=dict)
    l2_load_misses: dict[int, int] = field(default_factory=dict)
    store_accesses: int = 0
    l1_store_misses: int = 0
    l2_store_misses: int = 0

    @property
    def total_l1_load_misses(self) -> int:
        return sum(self.l1_load_misses.values())

    @property
    def total_l2_load_misses(self) -> int:
        return sum(self.l2_load_misses.values())

    def l2_miss_coverage(self, delta: set[int]) -> float:
        """Share of L2 load misses caused by members of ``delta``."""
        total = self.total_l2_load_misses
        if total == 0:
            return 0.0
        covered = sum(self.l2_load_misses.get(pc, 0) for pc in delta)
        return covered / total


def simulate_trace_hierarchy(trace: MemoryTrace,
                             config: HierarchyConfig = DEFAULT_HIERARCHY
                             ) -> HierarchyStats:
    """Replay ``trace`` through a cold two-level hierarchy."""
    l1 = Cache(config.l1)
    l2 = Cache(config.l2)
    load_accesses: dict[int, int] = defaultdict(int)
    l1_misses: dict[int, int] = defaultdict(int)
    l2_misses: dict[int, int] = defaultdict(int)
    store_accesses = 0
    l1_store_misses = 0
    l2_store_misses = 0

    for pc, address, kind in zip(trace.pcs, trace.addresses,
                                 trace.kinds):
        l1_hit = l1.access(address)
        l2_hit = True
        if not l1_hit:
            l2_hit = l2.access(address)
        if kind == LOAD:
            load_accesses[pc] += 1
            if not l1_hit:
                l1_misses[pc] += 1
                if not l2_hit:
                    l2_misses[pc] += 1
        else:
            store_accesses += 1
            if not l1_hit:
                l1_store_misses += 1
                if not l2_hit:
                    l2_store_misses += 1

    return HierarchyStats(
        config=config,
        load_accesses=dict(load_accesses),
        l1_load_misses=dict(l1_misses),
        l2_load_misses=dict(l2_misses),
        store_accesses=store_accesses,
        l1_store_misses=l1_store_misses,
        l2_store_misses=l2_store_misses,
    )
