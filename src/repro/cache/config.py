"""Cache configurations, including the paper's experimental presets.

The paper trains with "a split level one cache structure with a four-way
associative data cache having 256 cache sets of 32 bytes cache blocks,
implementing a LRU replacement policy" (Section 6) and evaluates at a
baseline 8 KByte data cache (Section 8.5), sweeping associativity 2/4/8
(Table 8) and sizes 8K..64K (Table 9).  Only the data cache is modelled —
the heuristic concerns data-cache misses exclusively.
"""

from __future__ import annotations

from dataclasses import dataclass

#: Seed of the pseudo-random replacement victim sequence.  Historically a
#: hard-coded constant inside the cache model; it is now carried by the
#: config (so fuzz runs can vary it) with this default preserving every
#: existing digest and EXPERIMENTS number bit-for-bit.
DEFAULT_RNG_SEED = 0x2545F491


@dataclass(frozen=True)
class CacheConfig:
    """Geometry and policy of one data cache."""

    size: int = 8 * 1024          # total bytes
    assoc: int = 4
    block_size: int = 32
    replacement: str = "lru"      # "lru" | "fifo" | "random"
    rng_seed: int = DEFAULT_RNG_SEED   # "random" victim sequence seed

    def __post_init__(self) -> None:
        if self.size % (self.assoc * self.block_size):
            raise ValueError(
                f"cache size {self.size} not divisible by "
                f"assoc*block ({self.assoc}*{self.block_size})")
        if self.num_sets & (self.num_sets - 1):
            raise ValueError(f"number of sets must be a power of two, "
                             f"got {self.num_sets}")
        if self.replacement not in ("lru", "fifo", "random"):
            raise ValueError(f"unknown replacement {self.replacement!r}")
        if not isinstance(self.rng_seed, int) \
                or not 0 <= self.rng_seed <= 0x7FFF_FFFF:
            raise ValueError(f"rng_seed must be a 31-bit non-negative "
                             f"int, got {self.rng_seed!r}")

    @property
    def num_sets(self) -> int:
        return self.size // (self.assoc * self.block_size)

    def describe(self) -> str:
        text = (f"{self.size // 1024}KB {self.assoc}-way "
                f"{self.block_size}B-block {self.replacement.upper()}")
        if self.rng_seed != DEFAULT_RNG_SEED:
            # Only non-default seeds are spelled out, keeping default
            # describe() strings — and the disk-cache digests derived
            # from them — exactly as before.
            text += f" seed={self.rng_seed:#x}"
        return text


#: Section 6 training configuration: 256 sets x 4 ways x 32 B = 32 KB.
TRAINING_CONFIG = CacheConfig(size=256 * 4 * 32, assoc=4, block_size=32)

#: Section 8.5 baseline: 8 KB, 4-way, 32 B blocks, LRU.
BASELINE_CONFIG = CacheConfig(size=8 * 1024, assoc=4, block_size=32)


def associativity_sweep() -> list[CacheConfig]:
    """Table 8: associativity 2, 4, 8 at the baseline size."""
    return [CacheConfig(size=8 * 1024, assoc=a, block_size=32)
            for a in (2, 4, 8)]


def size_sweep() -> list[CacheConfig]:
    """Table 9: 8K, 16K, 32K and 64K caches."""
    return [CacheConfig(size=k * 1024, assoc=4, block_size=32)
            for k in (8, 16, 32, 64)]
