"""DAG-aware experiment-campaign engine.

One executor regenerates any subset of the EXPERIMENTS tables from the
canonical grid (:mod:`repro.experiments.grid`): the full workload ×
input × optimize × geometry grid expands into content-hashed cells,
cells are scheduled with dependency awareness (trace/sweep runs and
analytic profiles fan out across a process pool or a running service
endpoint; each table formats as soon as its dependencies land), and
every cell's provenance is appended to a queryable JSON-lines manifest
under ``.repro_cache/campaign/``.  Interrupted campaigns resume by
skipping any cell whose manifest entry matches the current code digest
and whose artifacts are still warm — zero recomputation after a kill.
"""

from repro.campaign.engine import (Campaign, CampaignResult, CellPlan,
                                   code_digest)
from repro.campaign.manifest import Manifest, campaign_dir

__all__ = [
    "Campaign", "CampaignResult", "CellPlan", "Manifest",
    "campaign_dir", "code_digest",
]
