"""Append-only JSON-lines provenance manifest for campaigns.

One line per completed cell, appended (with a flush) the moment the
cell finishes, so a SIGKILL loses at most the line being written.  The
loader is last-wins per cell id and tolerates a truncated final line —
exactly what a killed writer leaves behind.  The manifest is the resume
source of truth: a cell is skipped when its latest entry matches the
current content digest and code digest and its artifacts are still on
disk.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path
from typing import Any, Iterator, Optional

from repro.pipeline.session import default_cache_dir

MANIFEST_NAME = "manifest.jsonl"


def campaign_dir(cache_dir: Optional[Path] = None) -> Path:
    """``<cache>/campaign`` — manifest plus rendered table artifacts."""
    base = Path(cache_dir) if cache_dir is not None \
        else default_cache_dir()
    return base / "campaign"


class Manifest:
    """The append-only cell ledger of one campaign directory."""

    def __init__(self, directory: Path):
        self.directory = Path(directory)
        self.path = self.directory / MANIFEST_NAME

    # -- writing ------------------------------------------------------
    def append(self, entry: dict[str, Any]) -> None:
        """Durably append one cell record (fsync'd line)."""
        self.directory.mkdir(parents=True, exist_ok=True)
        line = json.dumps(entry, sort_keys=True) + "\n"
        with open(self.path, "a") as handle:
            handle.write(line)
            handle.flush()
            os.fsync(handle.fileno())

    def record(self, cell: str, kind: str, digest: str, code: str,
               wall_s: float, tier: str, campaign_id: str,
               **extra: Any) -> dict[str, Any]:
        """Build + append the canonical provenance entry for a cell."""
        entry: dict[str, Any] = {
            "cell": cell,
            "kind": kind,               # run | analytic | table
            "digest": digest,           # content hash of inputs+params
            "code": code,               # digest of src/repro at run time
            "wall_s": round(wall_s, 4),
            "tier": tier,               # computed | disk | manifest
            "campaign": campaign_id,
            "ts": round(time.time(), 3),
        }
        entry.update(extra)
        self.append(entry)
        return entry

    # -- reading ------------------------------------------------------
    def entries(self) -> Iterator[dict[str, Any]]:
        """Every decodable line, oldest first (truncated tail skipped)."""
        try:
            text = self.path.read_text()
        except OSError:
            return
        for line in text.splitlines():
            line = line.strip()
            if not line:
                continue
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # the killed writer's partial last line
            if isinstance(entry, dict) and "cell" in entry:
                yield entry

    def latest(self) -> dict[str, dict[str, Any]]:
        """Last-wins view: cell id -> most recent entry."""
        view: dict[str, dict[str, Any]] = {}
        for entry in self.entries():
            view[entry["cell"]] = entry
        return view

    def status(self, current_code: Optional[str] = None
               ) -> dict[str, Any]:
        """Queryable summary of the ledger (for ``--status``)."""
        view = self.latest()
        by_kind: dict[str, int] = {}
        by_tier: dict[str, int] = {}
        stale = 0
        last_ts = 0.0
        wall = 0.0
        for entry in view.values():
            by_kind[entry.get("kind", "?")] = \
                by_kind.get(entry.get("kind", "?"), 0) + 1
            by_tier[entry.get("tier", "?")] = \
                by_tier.get(entry.get("tier", "?"), 0) + 1
            wall += float(entry.get("wall_s", 0.0))
            last_ts = max(last_ts, float(entry.get("ts", 0.0)))
            if current_code is not None \
                    and entry.get("code") != current_code:
                stale += 1
        return {
            "path": str(self.path),
            "cells": len(view),
            "by_kind": dict(sorted(by_kind.items())),
            "by_tier": dict(sorted(by_tier.items())),
            "stale_cells": stale,
            "recorded_wall_s": round(wall, 2),
            "last_entry_ts": last_ts,
        }
