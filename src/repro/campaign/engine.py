"""The DAG-aware campaign executor.

A campaign is planned as three kinds of content-hashed cells:

* ``run`` — one ``(workload, input, optimize)`` pipeline run simulated
  under the union of every requesting table's cache geometries (one
  trace replay covers them all; misses shared across tables are
  computed exactly once),
* ``analytic`` — one trace-free reuse profile per program,
* ``table`` — one formatted exhibit, depending on its spec's run and
  analytic cells.

Run and analytic cells fan out across a process pool (or are dispatched
to a running service endpoint with ``remote=``); each table renders in
the parent the moment its last dependency lands, so a slow workload
never stalls unrelated tables.  Every finished cell appends provenance
(content digest, code digest, seed/config, wall time, cache tier) to
the JSON-lines manifest; with ``resume=True`` any cell whose latest
manifest entry matches both digests and whose on-disk artifacts are
still warm is skipped without recomputation.

The execution tripwire: when ``$REPRO_CAMPAIGN_FORBID`` names a file of
cell ids, deciding to *compute* any of them raises — the crash-resume
test uses it to prove that completed cells are never re-executed.
"""

from __future__ import annotations

import hashlib
import os
import time
import uuid
from concurrent.futures import (FIRST_COMPLETED, Future,
                                ProcessPoolExecutor, ThreadPoolExecutor,
                                wait)
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Callable, Optional, Sequence

from repro.cache.config import CacheConfig
from repro.campaign.manifest import Manifest, campaign_dir
from repro.experiments.grid import GridCell, campaign_cells, table_specs
from repro.pipeline.session import RunKey, Session

#: Block size of the analytic profiles the tables read (Table 15 uses
#: the baseline geometry's blocks).
_ANALYTIC_BLOCK_SIZE = 32

_FORBID_ENV = "REPRO_CAMPAIGN_FORBID"


def code_digest() -> str:
    """Content hash of every ``src/repro`` Python source.

    Part of each manifest entry: a resumed campaign only trusts cells
    recorded under the exact code that would recompute them, so any
    source change invalidates the whole ledger at once.
    """
    import repro
    root = Path(repro.__file__).resolve().parent
    digest = hashlib.sha1()
    for path in sorted(root.rglob("*.py")):
        digest.update(str(path.relative_to(root)).encode())
        digest.update(b"\0")
        digest.update(path.read_bytes())
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass(frozen=True)
class CellPlan:
    """One schedulable unit of the campaign DAG."""

    id: str
    kind: str                       # run | analytic | table
    digest: str                     # content hash of inputs + params
    deps: tuple[str, ...] = ()
    cell: Optional[GridCell] = None     # run cells
    number: Optional[int] = None        # table cells


@dataclass
class CampaignResult:
    """Outcome of one :meth:`Campaign.run`."""

    campaign_id: str
    tables: dict[int, str] = field(default_factory=dict)  # rendered
    computed: int = 0               # cells executed this run
    skipped: int = 0                # cells resumed from the manifest
    cached: int = 0                 # cells warm in the session caches
    elapsed: float = 0.0
    profile_store: dict[str, Any] = field(default_factory=dict)

    def describe(self) -> str:
        return (f"{len(self.tables)} table(s), "
                f"{self.computed} cell(s) computed, "
                f"{self.skipped} resumed, {self.cached} cached, "
                f"{self.elapsed:.1f}s")


def _run_cell_id(cell: GridCell) -> str:
    mode = "opt" if cell.optimize else "base"
    return f"run:{cell.workload}:{cell.input_name}:{mode}"


def _analytic_cell_id(cell: GridCell) -> str:
    mode = "opt" if cell.optimize else "base"
    return (f"analytic:{cell.workload}:{cell.input_name}:{mode}"
            f":bs{_ANALYTIC_BLOCK_SIZE}")


def _forbidden_cells() -> frozenset[str]:
    path = os.environ.get(_FORBID_ENV)
    if not path:
        return frozenset()
    try:
        text = Path(path).read_text()
    except OSError:
        return frozenset()
    return frozenset(line.strip() for line in text.splitlines()
                     if line.strip())


class Campaign:
    """Plan + execute one campaign over a shared :class:`Session`."""

    def __init__(self, session: Session,
                 numbers: Optional[Sequence[int]] = None,
                 directory: Optional[Path] = None):
        self.session = session
        specs = table_specs()
        self.numbers = sorted(specs) if numbers is None \
            else sorted(numbers)
        unknown = [n for n in self.numbers if n not in specs]
        if unknown:
            raise ValueError(f"unknown tables: {unknown}")
        self.directory = Path(directory) if directory is not None \
            else campaign_dir(session.cache_dir)
        self.tables_dir = self.directory / "tables"
        self.manifest = Manifest(self.directory)
        self.code = code_digest()
        # Parent + worker ProfileStore lookups, folded per run.
        self._store_counters: dict[str, int] = {}

    # -- planning ----------------------------------------------------
    def plan(self) -> list[CellPlan]:
        """Expand the requested tables into the cell DAG."""
        session = self.session
        specs = table_specs()
        merged = campaign_cells(self.numbers)
        by_run_key = {cell.run_key: cell for cell in merged}
        plans: list[CellPlan] = []
        digests: dict[str, str] = {}
        for cell in merged:
            key = RunKey(*cell.run_key)
            content = "|".join(session._digest(key, config)
                               for config in cell.configs)
            digest = hashlib.sha1(content.encode()).hexdigest()
            cell_id = _run_cell_id(cell)
            digests[cell_id] = digest
            plans.append(CellPlan(id=cell_id, kind="run",
                                  digest=digest, cell=cell))
        for cell in merged:
            if not cell.analytic:
                continue
            key = RunKey(*cell.run_key)
            digest = hashlib.sha1(
                f"{session._program_digest(key)}"
                f"|bs{_ANALYTIC_BLOCK_SIZE}".encode()).hexdigest()
            cell_id = _analytic_cell_id(cell)
            digests[cell_id] = digest
            plans.append(CellPlan(id=cell_id, kind="analytic",
                                  digest=digest, cell=cell))
        for number in self.numbers:
            deps: list[str] = []
            for spec_cell in specs[number].cells():
                merged_cell = by_run_key[spec_cell.run_key]
                deps.append(_run_cell_id(merged_cell))
                if spec_cell.analytic:
                    deps.append(_analytic_cell_id(merged_cell))
            deps = list(dict.fromkeys(deps))
            content = "|".join(
                [f"table{number}", f"scale{session.scale}"]
                + [digests[dep] for dep in deps])
            plans.append(CellPlan(
                id=f"table:{number:02d}", kind="table",
                digest=hashlib.sha1(content.encode()).hexdigest(),
                deps=tuple(deps), number=number))
        return plans

    # -- resume ------------------------------------------------------
    def _artifacts_warm(self, plan: CellPlan,
                        entry: dict[str, Any]) -> bool:
        """Are the cell's outputs still on disk after a restart?"""
        session = self.session
        if plan.kind == "run":
            key = RunKey(*plan.cell.run_key)
            return all(session._is_warm(key, config)
                       for config in plan.cell.configs)
        if plan.kind == "analytic":
            key = RunKey(*plan.cell.run_key)
            return session._profile_store.get_analytic(
                session._program_digest(key),
                _ANALYTIC_BLOCK_SIZE) is not None
        path = self.tables_dir / f"table{plan.number:02d}.txt"
        try:
            # write_text appended one newline to the rendered text;
            # undo exactly that so the hash matches the recorded one.
            text = path.read_text().removesuffix("\n")
        except OSError:
            return False
        return hashlib.sha1(text.encode()).hexdigest() \
            == entry.get("output_sha1")

    def _resumable(self, plan: CellPlan,
                   ledger: dict[str, dict[str, Any]]) -> bool:
        entry = ledger.get(plan.id)
        return (entry is not None
                and entry.get("digest") == plan.digest
                and entry.get("code") == self.code
                and self._artifacts_warm(plan, entry))

    # -- execution ---------------------------------------------------
    def run(self, jobs: Optional[int] = None,
            remote: Optional[str] = None, resume: bool = False,
            echo: Optional[Callable[[str], None]] = None
            ) -> CampaignResult:
        start = time.perf_counter()
        say = echo or (lambda text: None)
        campaign_id = uuid.uuid4().hex[:12]
        self._store_counters = {}
        parent_before = dict(self.session._profile_store.counters)
        plans = self.plan()
        ledger = self.manifest.latest() if resume else {}
        forbidden = _forbidden_cells()
        result = CampaignResult(campaign_id=campaign_id)

        compute: list[CellPlan] = []
        done: set[str] = set()
        rendered_from_disk: dict[int, str] = {}
        for plan in plans:
            if resume and self._resumable(plan, ledger):
                done.add(plan.id)
                result.skipped += 1
                if plan.kind == "table":
                    path = self.tables_dir \
                        / f"table{plan.number:02d}.txt"
                    rendered_from_disk[plan.number] = \
                        path.read_text().removesuffix("\n")
                continue
            if plan.kind != "table":
                compute.append(plan)
        for plan in compute:
            if plan.id in forbidden:
                raise RuntimeError(
                    f"campaign tripwire: would recompute completed "
                    f"cell {plan.id}")

        tables = [plan for plan in plans if plan.kind == "table"
                  and plan.id not in done]
        for plan in tables:
            if plan.id in forbidden:
                raise RuntimeError(
                    f"campaign tripwire: would recompute completed "
                    f"cell {plan.id}")
        waiting = {plan.id: set(plan.deps) - done for plan in tables}
        table_plans = {plan.id: plan for plan in tables}

        say(f"[campaign {campaign_id}] {len(plans)} cell(s): "
            f"{len(compute)} to compute, {result.skipped} resumed")

        def finish_cell(plan: CellPlan, wall: float, tier: str) -> None:
            if tier == "computed":
                result.computed += 1
            else:
                result.cached += 1
            extra: dict[str, Any] = {}
            if plan.kind == "run":
                extra["configs"] = [c.describe()
                                    for c in plan.cell.configs]
                extra["seeds"] = sorted({c.rng_seed
                                         for c in plan.cell.configs})
                extra["scale"] = self.session.scale
            self.manifest.record(plan.id, plan.kind, plan.digest,
                                 self.code, wall, tier, campaign_id,
                                 **extra)
            done.add(plan.id)
            for pending in waiting.values():
                pending.discard(plan.id)

        def render_ready() -> None:
            ready = [cell_id for cell_id, pending in waiting.items()
                     if not pending]
            for cell_id in ready:
                del waiting[cell_id]
                plan = table_plans[cell_id]
                started = time.perf_counter()
                from repro.experiments.runner import EXPERIMENTS
                text = EXPERIMENTS[plan.number](self.session).render()
                self.tables_dir.mkdir(parents=True, exist_ok=True)
                path = self.tables_dir / f"table{plan.number:02d}.txt"
                path.write_text(text + "\n")
                result.tables[plan.number] = text
                finish_cell_table(plan,
                                  time.perf_counter() - started, text)
                say(f"[campaign {campaign_id}] {plan.id} rendered")

        def finish_cell_table(plan: CellPlan, wall: float,
                              text: str) -> None:
            result.computed += 1
            self.manifest.record(
                plan.id, "table", plan.digest, self.code, wall,
                "computed", campaign_id,
                output_sha1=hashlib.sha1(text.encode()).hexdigest())
            done.add(plan.id)

        if remote is not None:
            self._run_remote(compute, remote, finish_cell,
                             render_ready, say)
        else:
            self._run_local(compute, jobs, finish_cell,
                            render_ready, say)
        render_ready()
        if waiting:  # every dep either computed or resumed: impossible
            raise RuntimeError(f"unsatisfied table deps: {waiting}")
        result.tables.update(rendered_from_disk)
        result.elapsed = time.perf_counter() - start
        for name, count in \
                self.session._profile_store.counters.items():
            delta = count - parent_before.get(name, 0)
            self._store_counters[name] = \
                self._store_counters.get(name, 0) + delta
        result.profile_store = dict(self._store_counters)
        return result

    # -- local execution ---------------------------------------------
    def _run_local(self, compute: list[CellPlan],
                   jobs: Optional[int],
                   finish_cell: Callable[[CellPlan, float, str], None],
                   render_ready: Callable[[], None],
                   say: Callable[[str], None]) -> None:
        session = self.session
        if jobs is None:
            jobs = int(os.environ.get("REPRO_JOBS",
                                      os.cpu_count() or 1))
        jobs = max(1, min(jobs, len(compute) or 1))
        if jobs == 1:
            for plan in compute:
                wall, tier = _compute_inline(session, plan)
                finish_cell(plan, wall, tier)
                render_ready()
            return
        tasks = {
            plan.id: (session.scale, session.max_steps,
                      session.use_disk_cache, str(session.cache_dir),
                      session.engine, plan.kind,
                      plan.cell.run_key, plan.cell.configs)
            for plan in compute
        }
        with ProcessPoolExecutor(max_workers=jobs) as pool:
            futures: dict[Future, CellPlan] = {
                pool.submit(_cell_worker, tasks[plan.id]): plan
                for plan in compute
            }
            pending = set(futures)
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    plan = futures[future]
                    wall, tier, payloads, counters = future.result()
                    for name, count in counters.items():
                        self._store_counters[name] = \
                            self._store_counters.get(name, 0) + count
                    if plan.kind == "run":
                        key = RunKey(*plan.cell.run_key)
                        for config, payload in zip(plan.cell.configs,
                                                   payloads):
                            if payload is not None:
                                session._absorb(key, config, payload)
                    finish_cell(plan, wall, tier)
                render_ready()

    # -- remote execution --------------------------------------------
    def _run_remote(self, compute: list[CellPlan], address: str,
                    finish_cell: Callable[[CellPlan, float, str], None],
                    render_ready: Callable[[], None],
                    say: Callable[[str], None]) -> None:
        """Dispatch run cells to a running service/cluster endpoint.

        One ``simulate`` request per run cell (the scheduler merges
        concurrent requests for one trace into a single replay); the
        response's full per-PC columns and block profile rebuild the
        local session state.  Analytic cells are computed locally —
        they are static analysis, cheaper than a round trip.
        """
        from repro.service.client import ServiceClient

        session = self.session
        run_cells = [plan for plan in compute if plan.kind == "run"]
        other = [plan for plan in compute if plan.kind != "run"]
        say(f"[campaign] dispatching {len(run_cells)} run cell(s) "
            f"to {address}")

        def dispatch(plan: CellPlan) -> tuple[float, str]:
            started = time.perf_counter()
            key = RunKey(*plan.cell.run_key)
            with ServiceClient.connect(address) as client:
                response = client.simulate(
                    session.source(key.workload, key.input_name),
                    optimize=key.optimize,
                    max_steps=session.max_steps,
                    configs=[_config_params(c)
                             for c in plan.cell.configs],
                )
            _absorb_simulate_response(session, key, plan.cell.configs,
                                      response)
            return time.perf_counter() - started, "computed"

        with ThreadPoolExecutor(max_workers=min(8, len(run_cells)
                                                or 1)) as pool:
            futures = {pool.submit(dispatch, plan): plan
                       for plan in run_cells}
            pending = set(futures)
            while pending:
                finished, pending = wait(pending,
                                         return_when=FIRST_COMPLETED)
                for future in finished:
                    plan = futures[future]
                    wall, tier = future.result()
                    finish_cell(plan, wall, tier)
                render_ready()
        for plan in other:
            wall, tier = _compute_inline(session, plan)
            finish_cell(plan, wall, tier)
            render_ready()


def _config_params(config: CacheConfig) -> dict[str, Any]:
    params = {"size": config.size, "assoc": config.assoc,
              "block_size": config.block_size,
              "replacement": config.replacement}
    return params


def _compute_inline(session: Session,
                    plan: CellPlan) -> tuple[float, str]:
    """Compute one run/analytic cell in the parent process."""
    started = time.perf_counter()
    key = RunKey(*plan.cell.run_key)
    if plan.kind == "analytic":
        tier = "disk" if session._profile_store.get_analytic(
            session._program_digest(key),
            _ANALYTIC_BLOCK_SIZE) is not None else "computed"
        session.analytic_profile(key.workload, key.input_name,
                                 key.optimize,
                                 block_size=_ANALYTIC_BLOCK_SIZE)
    else:
        tier = "disk" if all(session._is_warm(key, c)
                             for c in plan.cell.configs) \
            else "computed"
        session.stats_multi(key.workload, key.input_name,
                            key.optimize, plan.cell.configs)
    return time.perf_counter() - started, tier


def _cell_worker(task: tuple) -> tuple[float, str, list, dict]:
    """Process-pool worker: one cell in a private session.

    Shares the on-disk caches with the parent; run cells return the
    JSON-able payloads so the parent merges them without re-reading
    the disk (analytic profiles travel via the shared profile store),
    plus the worker's ProfileStore counters for aggregation.
    """
    (scale, max_steps, use_disk_cache, cache_dir, engine, kind,
     key_tuple, configs) = task
    started = time.perf_counter()
    session = Session(scale=scale, cache_dir=Path(cache_dir),
                      use_disk_cache=use_disk_cache,
                      max_steps=max_steps, engine=engine)
    key = RunKey(*key_tuple)
    if kind == "analytic":
        tier = "disk" if session._profile_store.get_analytic(
            session._program_digest(key),
            _ANALYTIC_BLOCK_SIZE) is not None else "computed"
        session.analytic_profile(key.workload, key.input_name,
                                 key.optimize,
                                 block_size=_ANALYTIC_BLOCK_SIZE)
        return (time.perf_counter() - started, tier, [],
                dict(session._profile_store.counters))
    tier = "disk" if all(session._is_warm(key, c) for c in configs) \
        else "computed"
    stats_list = session.stats_multi(key.workload, key.input_name,
                                     key.optimize, configs)
    payloads = [session._payload(key, stats) for stats in stats_list]
    return (time.perf_counter() - started, tier, payloads,
            dict(session._profile_store.counters))


def _absorb_simulate_response(session: Session, key: RunKey,
                              configs: Sequence[CacheConfig],
                              response: dict[str, Any]) -> None:
    """Rebuild local session state from a remote simulate response."""
    from repro.profiling.profile import BlockProfile

    program = session.program(key.workload, key.input_name,
                              key.optimize)
    steps = int(response.get("steps", 0))
    block_counts = {int(a): int(c) for a, c in
                    (response.get("block_counts") or {}).items()}
    if block_counts:
        session._profiles[key] = BlockProfile.from_block_counts(
            program, block_counts)
        session._steps[key] = steps
    for config, entry in zip(configs, response["results"]):
        from repro.cache.model import CacheStats

        def hexmap(name: str) -> dict[int, int]:
            return {int(a, 16): int(m) for a, m in
                    (entry.get(name) or {}).items()}

        stats = CacheStats(
            config=config,
            load_accesses=hexmap("load_accesses"),
            load_misses=hexmap("load_misses"),
            store_accesses=hexmap("store_accesses"),
            store_misses=hexmap("store_misses"),
            prefetch_ops=int(entry.get("prefetch_ops", 0)),
            prefetch_fills=int(entry.get("prefetch_fills", 0)),
        )
        session._stats[(key, config)] = stats
        if session.use_disk_cache and block_counts:
            session._store_disk(key, config, stats)
