"""Page-granular dTLB model on top of the cache replay machinery.

A TLB is a cache whose blocks are pages: a geometry of ``entries``
translation slots over ``page_size``-byte pages, ``assoc``-way set
associative (fully associative when every entry sits in one set), with
LRU replacement — the policy hardware TLBs approximate.  The mapping to
:class:`repro.cache.config.CacheConfig` is exact::

    CacheConfig(size=page_size * entries, assoc=ways,
                block_size=page_size, replacement="lru")

so every engine the cache model already has — the exec-compiled
multi-config replay, the stack-distance sweep that answers all LRU
geometries from one pass per set mapping, the chunked trace streaming,
the persistent profile store — serves TLB questions unchanged.  A sweep
over N TLB geometries with the same page size costs one trace pass, and
its per-PC distance histograms land in the same ``ProfileStore``
keyspace (keyed by trace digest and block size, i.e. page size) that
cache sweeps use, so a warmed store answers TLB re-sweeps without
touching the trace at all.

Per-PC dTLB miss histograms fall out of the underlying
:class:`repro.cache.model.CacheStats` columns; :class:`TlbStats` keeps
the TLB vocabulary (accesses, misses, walks) on top.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.cache.config import CacheConfig
from repro.cache.model import CacheStats, TraceSource
from repro.cache.stackdist import ProfileStore, simulate_sweep

#: A realistic first-level dTLB: 64 entries, 4 KiB pages, fully
#: associative (the shape of most shipped L1 dTLBs).
DEFAULT_PAGE_SIZE = 4096
DEFAULT_ENTRIES = 64


def _is_pow2(value: int) -> bool:
    return value > 0 and (value & (value - 1)) == 0


@dataclass(frozen=True)
class TlbConfig:
    """One dTLB geometry.

    ``assoc=0`` (the default) means fully associative — every entry in
    one set, which is both the common hardware shape and the geometry
    the monotonicity invariants are proved for.
    """

    page_size: int = DEFAULT_PAGE_SIZE
    entries: int = DEFAULT_ENTRIES
    assoc: int = 0

    def __post_init__(self):
        if not _is_pow2(self.page_size):
            raise ValueError(
                f"page_size must be a power of two, got {self.page_size}")
        if not _is_pow2(self.entries):
            raise ValueError(
                f"entries must be a power of two, got {self.entries}")
        ways = self.ways
        if ways < 1 or self.entries % ways:
            raise ValueError(
                f"assoc {self.assoc} does not divide {self.entries} "
                f"entries")
        if not _is_pow2(self.entries // ways):
            raise ValueError(
                f"{self.entries} entries / {ways} ways is not a "
                f"power-of-two set count")

    @property
    def ways(self) -> int:
        """Resolved associativity: ``entries`` when fully associative."""
        return self.assoc if self.assoc else self.entries

    @property
    def sets(self) -> int:
        return self.entries // self.ways

    @property
    def reach(self) -> int:
        """Bytes mapped when every entry is live."""
        return self.page_size * self.entries

    @property
    def fully_associative(self) -> bool:
        return self.ways == self.entries

    def as_cache_config(self) -> CacheConfig:
        """The exact cache-model equivalent of this geometry."""
        return CacheConfig(size=self.reach, assoc=self.ways,
                           block_size=self.page_size,
                           replacement="lru")

    def describe(self) -> str:
        page = (f"{self.page_size // 1024}KB" if self.page_size >= 1024
                else f"{self.page_size}B")
        shape = ("fully-assoc" if self.fully_associative
                 else f"{self.ways}-way")
        return f"{self.entries}-entry {shape} {page}-page TLB"

    def to_dict(self) -> dict:
        return {"page_size": self.page_size, "entries": self.entries,
                "assoc": self.assoc}


@dataclass
class TlbStats:
    """Per-PC dTLB behaviour for one geometry.

    A miss is a page-table walk; loads and stores both consult the
    dTLB, prefetches do not architecturally require a translation here
    and are excluded (the underlying replay never fills on their
    behalf either — prefetch fills model cache lines, not
    translations, so they are not surfaced).
    """

    config: TlbConfig
    cache: CacheStats = field(repr=False)

    @property
    def load_accesses(self) -> dict[int, int]:
        return self.cache.load_accesses

    @property
    def load_misses(self) -> dict[int, int]:
        return self.cache.load_misses

    @property
    def store_accesses(self) -> dict[int, int]:
        return self.cache.store_accesses

    @property
    def store_misses(self) -> dict[int, int]:
        return self.cache.store_misses

    @property
    def total_accesses(self) -> int:
        return (sum(self.cache.load_accesses.values())
                + sum(self.cache.store_accesses.values()))

    @property
    def total_misses(self) -> int:
        """Page-table walks triggered across the run."""
        return (sum(self.cache.load_misses.values())
                + sum(self.cache.store_misses.values()))

    @property
    def miss_rate(self) -> float:
        accesses = self.total_accesses
        return self.total_misses / accesses if accesses else 0.0

    def accesses_of(self, pc: int) -> int:
        return (self.cache.load_accesses.get(pc, 0)
                + self.cache.store_accesses.get(pc, 0))

    def misses_of(self, pc: int) -> int:
        return (self.cache.load_misses.get(pc, 0)
                + self.cache.store_misses.get(pc, 0))

    def pcs_by_misses(self) -> list[tuple[int, int]]:
        """``(pc, misses)`` sorted worst-first, then by PC."""
        combined: dict[int, int] = dict(self.cache.load_misses)
        for pc, count in self.cache.store_misses.items():
            combined[pc] = combined.get(pc, 0) + count
        return sorted(combined.items(), key=lambda kv: (-kv[1], kv[0]))


def simulate_tlb(source: TraceSource,
                 configs: Sequence[TlbConfig],
                 store: Optional[ProfileStore] = None
                 ) -> list[TlbStats]:
    """dTLB stats for every geometry in (at most) one trace pass.

    Delegates to the dispatching stack-distance sweep: geometries
    sharing a page size collapse to one profiling pass per set
    mapping, results are bit-identical across materialized, streamed,
    and store-replayed inputs, and per-PC distance histograms persist
    in ``store`` for replay-free re-sweeps.
    """
    configs = list(configs)
    sweep = simulate_sweep(source,
                           [c.as_cache_config() for c in configs],
                           store=store)
    return [TlbStats(config=c, cache=stats)
            for c, stats in zip(configs, sweep)]
