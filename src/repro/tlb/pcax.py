"""PC-indexed data address translation (PCAX) evaluation.

*PC-Indexed Data Address Translation* observes that for many loads the
data page is predictable from the load's PC alone: the PC indexes a
small table holding the last translation (and page stride) seen at
that PC, and the predicted translation is speculatively used before —
or instead of — the dTLB lookup.  A load is **PCAX-friendly** when
that per-PC last-page + stride predictor is right almost every time.

This module measures exactly that predictor over a trace: one
streaming pass, per-PC state of ``(last page, last page stride)``,
where access *i* of a PC is predicted at ``last_page + stride`` (the
stride observed between its two previous accesses; zero until a second
access has been seen, i.e. "same page again").  The first access of a
PC is unpredictable by construction and excluded from the ratio.

The interesting question for this repo is the cross-tabulation: does
the paper's *delinquent* set (loads chosen for cache-miss coverage)
coincide with the PCAX-friendly set?  :func:`pcax_crosstab` counts the
2x2 partition over any universe of load PCs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.model import TraceSource, chunk_columns
from repro.machine.trace import LOAD

#: Minimum prediction ratio for the "friendly" label.
DEFAULT_THRESHOLD = 0.9

#: PCs with fewer dynamic loads than this stay unlabelled: one access
#: has no predictable ratio at all, and a predictor table entry that
#: serves a single extra access is below the noise floor.
MIN_ACCESSES = 2


@dataclass
class PcaxLoad:
    """Predictor outcome for one load PC."""

    accesses: int = 0
    predicted: int = 0

    @property
    def predictable_accesses(self) -> int:
        """Accesses the predictor had a chance at (all but the first)."""
        return max(0, self.accesses - 1)

    @property
    def ratio(self) -> float:
        chances = self.predictable_accesses
        return self.predicted / chances if chances else 0.0


@dataclass
class PcaxProfile:
    """Per-PC PCAX predictability for one trace at one page size."""

    page_size: int
    threshold: float
    loads: dict[int, PcaxLoad]

    def friendly_set(self) -> set[int]:
        return {pc for pc, load in self.loads.items()
                if load.accesses >= MIN_ACCESSES
                and load.ratio >= self.threshold}

    @property
    def total_accesses(self) -> int:
        return sum(load.accesses for load in self.loads.values())

    @property
    def total_predicted(self) -> int:
        return sum(load.predicted for load in self.loads.values())


def pcax_profile(source: TraceSource,
                 page_size: int = 4096,
                 threshold: float = DEFAULT_THRESHOLD) -> PcaxProfile:
    """One streaming pass of the per-PC last-page + stride predictor.

    Folds over :func:`repro.cache.model.chunk_columns`, so materialized
    traces and chunked streams produce identical profiles.
    """
    if page_size <= 0 or page_size & (page_size - 1):
        raise ValueError(
            f"page_size must be a power of two, got {page_size}")
    shift = page_size.bit_length() - 1
    accesses: dict[int, int] = {}
    predicted: dict[int, int] = {}
    last_page: dict[int, int] = {}
    stride: dict[int, int] = {}
    for pcs, addresses, kinds in chunk_columns(source):
        for pc, address, kind in zip(pcs, addresses, kinds):
            if kind != LOAD:
                continue
            page = address >> shift
            previous = last_page.get(pc)
            if previous is None:
                accesses[pc] = accesses.get(pc, 0) + 1
                predicted.setdefault(pc, 0)
                last_page[pc] = page
                stride[pc] = 0
                continue
            accesses[pc] += 1
            if page == previous + stride[pc]:
                predicted[pc] += 1
            stride[pc] = page - previous
            last_page[pc] = page
    loads = {pc: PcaxLoad(accesses=count, predicted=predicted[pc])
             for pc, count in accesses.items()}
    return PcaxProfile(page_size=page_size, threshold=threshold,
                       loads=loads)


def pcax_crosstab(friendly: set[int], delinquent: set[int],
                  universe: set[int]) -> dict[str, int]:
    """2x2 partition of ``universe`` by the two labels."""
    both = len(universe & friendly & delinquent)
    return {
        "both": both,
        "delinquent_only": len(universe & delinquent) - both,
        "friendly_only": len(universe & friendly) - both,
        "neither": len(universe - friendly - delinquent),
    }
