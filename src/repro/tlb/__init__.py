"""Page-granular TLB scenario family.

The dTLB model (:mod:`repro.tlb.model`) maps TLB geometries onto the
cache replay and stack-distance sweep machinery; the PCAX evaluation
(:mod:`repro.tlb.pcax`) measures PC-indexed translation predictability
and cross-tabulates it against the paper's delinquent set.
"""

from repro.tlb.model import (DEFAULT_ENTRIES, DEFAULT_PAGE_SIZE,
                             TlbConfig, TlbStats, simulate_tlb)
from repro.tlb.pcax import (DEFAULT_THRESHOLD, MIN_ACCESSES, PcaxLoad,
                            PcaxProfile, pcax_crosstab, pcax_profile)

__all__ = [
    "DEFAULT_ENTRIES",
    "DEFAULT_PAGE_SIZE",
    "DEFAULT_THRESHOLD",
    "MIN_ACCESSES",
    "PcaxLoad",
    "PcaxProfile",
    "TlbConfig",
    "TlbStats",
    "pcax_crosstab",
    "pcax_profile",
    "simulate_tlb",
]
