"""The differential-oracle registry.

An oracle takes one :class:`~repro.fuzz.generators.FuzzCase` and runs
it through two or more implementations that are bit-identical by
contract, raising :class:`DivergenceError` on any mismatch:

``engines``
    closure vs. blocks machine execution — exit code, printed output,
    step count, block profile and byte-identical trace columns;
``replay``
    per-config :func:`~repro.cache.model.simulate_trace` vs. the
    single-pass :func:`~repro.cache.model.simulate_trace_multi` vs. the
    dispatching :func:`~repro.cache.stackdist.simulate_sweep` (cold and
    profile-served re-sweep) — full :class:`CacheStats` equality across
    LRU/FIFO/random geometries;
``streaming``
    chunked replay — in-memory chunking and a trace-store round-trip,
    cold and store-warmed — vs. the materialized path: CacheStats,
    rolling digests, stack-distance profiles and streamed execution
    must all be bit-identical;
``service``
    in-process :func:`repro.api.analyze_program` vs. the long-lived
    service path vs. a 2-worker cluster behind the consistent-hash
    router, canonical-JSON byte equality for both ``analyze`` and the
    purely static ``classify``;
``pipeline``
    a cold :class:`~repro.pipeline.session.Session` vs. a fresh session
    warmed from the first one's disk cache — stats, block profile and
    step counts must match exactly;
``analytic``
    the static analytic reuse-profile engine
    (:func:`repro.analytic.predict_profile`) vs. the measured sweep —
    exact access counts and tolerance-gated per-PC misses on sites the
    engine marks HIGH confidence, plus an honesty check that pointer
    chases surface LOW confidence instead of confident wrong numbers;
``tlb``
    the page-granular dTLB model (:mod:`repro.tlb`) — the sweep-served
    stats vs. a direct per-geometry replay, bit-identical across
    materialized / chunked / store-round-tripped inputs, and the PCAX
    predictor profile independent of chunking;
``redundancy``
    the streaming redundant-load analyzer (:mod:`repro.redundancy`)
    vs. a naive backward-scanning reference sharing no code with it,
    again across all trace input shapes;
``invariants``
    the single-implementation checkers from
    :mod:`repro.fuzz.invariants`.

Oracles are pure consumers: they never mutate the case, so a failing
case can be re-checked verbatim by the shrinker and the corpus replay.
"""

from __future__ import annotations

import shutil
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.cache.config import CacheConfig
from repro.cache.model import CacheStats, simulate_trace, \
    simulate_trace_multi
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.machine.simulator import run_program
from repro.machine.trace import MemoryTrace


class DivergenceError(AssertionError):
    """Two implementations of one contract disagreed."""

    def __init__(self, oracle: str, message: str):
        self.oracle = oracle
        self.message = message
        super().__init__(f"[{oracle}] {message}")


class OracleContext:
    """Shared expensive resources for one fuzz run.

    The service oracle keeps one background server alive across cases;
    the pipeline oracle gets a private scratch directory per call.  Use
    as a context manager (or call :meth:`close`) so the server thread
    and scratch space are reclaimed.
    """

    def __init__(self):
        self._server = None
        self._client = None
        self._cluster = None
        self._cluster_client = None
        self._tmp: Optional[Path] = None

    # -- lifecycle ----------------------------------------------------
    def __enter__(self) -> "OracleContext":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    def close(self) -> None:
        if self._client is not None:
            self._client.close()
            self._client = None
        if self._server is not None:
            self._server.stop()
            self._server = None
        if self._cluster_client is not None:
            self._cluster_client.close()
            self._cluster_client = None
        if self._cluster is not None:
            self._cluster.stop()
            self._cluster = None
        if self._tmp is not None:
            shutil.rmtree(self._tmp, ignore_errors=True)
            self._tmp = None

    # -- resources ----------------------------------------------------
    @property
    def client(self):
        """A connected client to the lazily started in-thread server."""
        if self._server is None:
            from repro.service.server import ServerConfig, serve_in_thread
            self._server = serve_in_thread(ServerConfig(
                port=0, workers=0, use_disk_cache=False))
        if self._client is None:
            from repro.service.client import ServiceClient
            self._client = ServiceClient(self._server.host,
                                         self._server.port, timeout=120.0)
        return self._client

    @property
    def cluster_client(self):
        """A client to a lazily started in-thread 2-worker cluster."""
        if self._cluster is None:
            from repro.cluster import RouterConfig, cluster_in_thread
            from repro.service.server import ServerConfig
            self._cluster = cluster_in_thread(
                2,
                router_config=RouterConfig(port=0, probe_interval=0.5),
                worker_config=ServerConfig(port=0, workers=0,
                                           use_disk_cache=False))
        if self._cluster_client is None:
            from repro.service.client import ServiceClient
            self._cluster_client = ServiceClient(
                self._cluster.host, self._cluster.port, timeout=120.0)
        return self._cluster_client

    def scratch_dir(self) -> Path:
        """A fresh empty subdirectory of the run's scratch space."""
        if self._tmp is None:
            self._tmp = Path(tempfile.mkdtemp(prefix="repro-fuzz-"))
        return Path(tempfile.mkdtemp(dir=self._tmp))


#: Step budget for fuzz-generated programs: far above anything the
#: generators emit, so hitting it means an engine diverged into a loop.
MAX_STEPS = 20_000_000


def compile_case(case) -> "Program":  # noqa: F821 - doc only
    """MiniC or assembly source to a linked Program."""
    if case.kind == "minic":
        from repro.compiler.driver import compile_source
        return compile_source(case.source())
    if case.kind == "asm":
        from repro.asm.assembler import assemble
        return assemble(case.source())
    raise ValueError(f"{case.kind} cases have no program")


def case_trace(case) -> MemoryTrace:
    """The memory trace a case denotes (synthetic or by execution)."""
    if case.kind == "trace":
        return case.trace()
    result = run_program(compile_case(case), max_steps=MAX_STEPS,
                         engine="closures")
    return result.trace


def _diverge(oracle: str, what: str, a, b) -> None:
    raise DivergenceError(oracle, f"{what}: {a!r} != {b!r}")


def _require_equal(oracle: str, what: str, a, b) -> None:
    if a != b:
        _diverge(oracle, what, a, b)


# -- engines oracle ----------------------------------------------------

def _trace_bytes(trace: Optional[MemoryTrace]) -> tuple:
    if trace is None:
        return (None,)
    return (trace.pcs.tobytes(), trace.addresses.tobytes(),
            trace.kinds.tobytes())


def check_engines(case, ctx: OracleContext) -> None:
    """Closure engine vs. blocks engine on one program."""
    program = compile_case(case)
    reference = run_program(program, max_steps=MAX_STEPS,
                            engine="closures")
    candidate = run_program(program, max_steps=MAX_STEPS,
                            engine="blocks")
    name = "engines"
    _require_equal(name, "exit code", reference.exit_code,
                   candidate.exit_code)
    _require_equal(name, "output", reference.output, candidate.output)
    _require_equal(name, "steps", reference.steps, candidate.steps)
    _require_equal(name, "block counts", reference.block_counts,
                   candidate.block_counts)
    if _trace_bytes(reference.trace) != _trace_bytes(candidate.trace):
        ref, cand = reference.trace, candidate.trace
        if len(ref) != len(cand):
            _diverge(name, "trace length", len(ref), len(cand))
        for index, (a, b) in enumerate(zip(ref, cand)):
            if a != b:
                _diverge(name, f"trace row {index}", a, b)
        _diverge(name, "trace bytes", "reference", "candidate")


# -- cache-simulator oracle --------------------------------------------

def _stats_tuple(stats: CacheStats) -> tuple:
    return (stats.load_accesses, stats.load_misses,
            stats.store_accesses, stats.store_misses,
            stats.prefetch_ops, stats.prefetch_fills)


def _require_stats_equal(name: str, config: CacheConfig, what: str,
                         a: CacheStats, b: CacheStats) -> None:
    if _stats_tuple(a) != _stats_tuple(b):
        for fld in ("load_accesses", "load_misses", "store_accesses",
                    "store_misses", "prefetch_ops", "prefetch_fills"):
            va, vb = getattr(a, fld), getattr(b, fld)
            if va != vb:
                _diverge(name, f"{config.describe()} {what} {fld}",
                         va, vb)


def check_replay(case, ctx: OracleContext) -> None:
    """simulate_trace vs. simulate_trace_multi vs. simulate_sweep."""
    trace = case_trace(case)
    configs = case.cache_configs()
    name = "replay"
    singles = [simulate_trace(trace, config) for config in configs]
    multi = simulate_trace_multi(trace, configs)
    store = ProfileStore()
    swept = simulate_sweep(trace, configs, store=store)
    reswept = simulate_sweep(trace, configs, store=store)
    for config, single, batched, cold, warm in zip(
            configs, singles, multi, swept, reswept):
        _require_stats_equal(name, config, "multi-vs-single",
                             batched, single)
        _require_stats_equal(name, config, "sweep-vs-single",
                             cold, single)
        _require_stats_equal(name, config, "resweep-vs-single",
                             warm, single)


# -- streaming oracle --------------------------------------------------

def check_streaming(case, ctx: OracleContext) -> None:
    """Chunked replay — cold and store-warmed — vs. materialized.

    Verifies the whole out-of-core pipeline on one case: in-memory
    chunking at awkward chunk sizes, a store round-trip (delta + zlib
    columns), the chunk-boundary-independent digest, the stack-distance
    profile pass, and (for program cases) streaming execution itself —
    all bit-identical to the materialized path.
    """
    trace = case_trace(case)
    configs = case.cache_configs()
    name = "streaming"
    singles = [simulate_trace(trace, config) for config in configs]

    for chunk_accesses in (7, 1024):
        stream = trace.chunk_stream(chunk_accesses)
        multi = simulate_trace_multi(stream, configs)
        for config, single, chunked in zip(configs, singles, multi):
            _require_stats_equal(name, config,
                                 f"chunk{chunk_accesses}-multi",
                                 chunked, single)
    _require_equal(name, "rolling digest",
                   trace.chunk_stream(13).digest, trace.digest())

    from repro.cache.stackdist import compute_groups
    from repro.store import TraceStore
    store = TraceStore(ctx.scratch_dir() / "traces")
    store.put_trace("case", trace, chunk_accesses=64)
    profile_store = ProfileStore()
    cold = simulate_sweep(store.open("case"), configs,
                          store=profile_store)
    warm = simulate_sweep(store.open("case"), configs,
                          store=profile_store)
    for config, single, a, b in zip(configs, singles, cold, warm):
        _require_stats_equal(name, config, "store-sweep", a, single)
        _require_stats_equal(name, config, "store-resweep", b, single)
    if configs:
        specs = [(configs[0].block_size, configs[0].num_sets, 8)]
        _require_equal(name, "stack-distance groups",
                       compute_groups(trace, specs),
                       compute_groups(store.open("case"), specs))

    if case.kind in ("minic", "asm"):
        from repro.machine.simulator import Machine
        program = compile_case(case)
        rebuilt = MemoryTrace()
        streamed = Machine(program, max_steps=MAX_STEPS).run_streaming(
            lambda c: rebuilt.extend(c.pcs, c.addresses, c.kinds),
            chunk_accesses=512)
        reference = run_program(program, max_steps=MAX_STEPS)
        _require_equal(name, "streamed steps", streamed.steps,
                       reference.steps)
        _require_equal(name, "streamed block counts",
                       streamed.block_counts, reference.block_counts)
        if _trace_bytes(rebuilt) != _trace_bytes(reference.trace):
            _diverge(name, "streamed trace bytes", "streamed",
                     "materialized")


# -- service oracle ----------------------------------------------------

def check_service(case, ctx: OracleContext) -> None:
    """Served analyze/classify vs. the in-process pipeline.

    Both endpoints — a single server and a 2-worker cluster behind the
    consistent-hash router — must be canonical-JSON byte-equal to the
    in-process result, so the routing layer provably adds nothing to
    the wire.
    """
    from repro.api import analyze_program
    from repro.export import canonical_json, report_to_dict
    source = case.source()
    name = "service"
    client = ctx.client
    clustered = ctx.cluster_client
    local = canonical_json(report_to_dict(analyze_program(source)))
    served = canonical_json(client.analyze(source))
    if served != local:
        _diverge(name, "analyze payload", served[:400], local[:400])
    routed = canonical_json(clustered.analyze(source))
    if routed != local:
        _diverge(name, "cluster analyze payload", routed[:400],
                 local[:400])
    local = canonical_json(report_to_dict(analyze_program(
        source, execute=False)))
    served = canonical_json(client.classify(source))
    if served != local:
        _diverge(name, "classify payload", served[:400], local[:400])
    routed = canonical_json(clustered.classify(source))
    if routed != local:
        _diverge(name, "cluster classify payload", routed[:400],
                 local[:400])


# -- pipeline-cache oracle ---------------------------------------------

def check_pipeline(case, ctx: OracleContext) -> None:
    """Cold Session vs. a fresh Session warmed from its disk cache."""
    from repro.pipeline.session import Session
    source = case.source()
    config = case.cache_configs()[0]
    name = "pipeline"
    cache_dir = ctx.scratch_dir()

    cold = Session(cache_dir=cache_dir, max_steps=MAX_STEPS)
    key = cold.add_source("fuzzcase", source)
    cold_stats = cold.stats("fuzzcase", cache_config=config)
    cold_profile = cold.profile("fuzzcase")
    if not cold._disk_path(key, config).exists():
        raise DivergenceError(name, "cold session wrote no disk entry")

    warm = Session(cache_dir=cache_dir, max_steps=MAX_STEPS)
    warm.add_source("fuzzcase", source)
    warm_stats = warm.stats("fuzzcase", cache_config=config)
    warm_profile = warm.profile("fuzzcase")
    if warm._traces:
        raise DivergenceError(
            name, "warm session re-executed instead of loading the "
                  "disk entry")
    _require_equal(name, "load_misses", cold_stats.load_misses,
                   warm_stats.load_misses)
    _require_equal(name, "load_accesses", cold_stats.load_accesses,
                   warm_stats.load_accesses)
    _require_equal(name, "store_misses", cold_stats.store_misses,
                   warm_stats.store_misses)
    _require_equal(name, "store_accesses", cold_stats.store_accesses,
                   warm_stats.store_accesses)
    _require_equal(name, "prefetch",
                   (cold_stats.prefetch_ops, cold_stats.prefetch_fills),
                   (warm_stats.prefetch_ops, warm_stats.prefetch_fills))
    _require_equal(name, "block_counts", cold_profile.block_counts,
                   warm_profile.block_counts)
    _require_equal(name, "block_sizes", cold_profile.block_sizes,
                   warm_profile.block_sizes)
    _require_equal(name, "steps", cold._steps[key], warm._steps[key])


# -- analytic-prediction oracle ----------------------------------------

#: Per-PC miss-count tolerance for the analytic oracle: the engine's
#: documented error envelope on HIGH-confidence sites is ``max(10, 5%)``
#: of that site's accesses (continuation smear across loop boundaries
#: and the capacity step rule at its exact boundary; see
#: docs/architecture.md).  Access counts have no envelope — a
#: HIGH-confidence access count is a closed-form trip-count product and
#: must match the measured sweep exactly.
ANALYTIC_MISS_SLACK = 10.0
ANALYTIC_MISS_RELATIVE = 0.05

#: The envelope is stated for paper-scale geometries.  Below ~1 KB the
#: capacity step rule and the Poisson conflict model both break down
#: (a handful of blocks per cache), so sub-1KB configs are checked for
#: access counts and honesty only, not miss counts.
ANALYTIC_MIN_CACHE_BYTES = 1024


def check_analytic(case, ctx: OracleContext) -> None:
    """Analytic per-PC prediction vs. the measured sweep.

    The analytic engine is an approximation, so this oracle gates a
    documented error envelope rather than bit equality — but only where
    the engine *claims* accuracy.  On PCs it marks HIGH confidence,
    access counts must equal the measured sweep exactly and per-PC miss
    counts must fall within ``max(8, 5% of accesses)`` on every LRU
    geometry.  The honesty contract is absolute: every executed memory
    op must appear in the profile, and pointer-chase cases must surface
    at least one LOW-confidence load — a confidently wrong number is
    precisely the bug this oracle exists to catch.
    """
    from repro.analytic import HIGH, LOW, predict_profile
    name = "analytic"
    program = compile_case(case)
    trace = case_trace(case)
    configs = [config for config in case.cache_configs()
               if config.replacement == "lru"] or [CacheConfig()]
    measured = simulate_sweep(trace, configs)
    profiles: dict[int, object] = {}
    for config in configs:
        if config.block_size not in profiles:
            profiles[config.block_size] = predict_profile(
                program, block_size=config.block_size)

    for config, stats in zip(configs, measured):
        profile = profiles[config.block_size]
        predicted = profile.evaluate(config)
        sides = (("load", stats.load_accesses, stats.load_misses,
                  profile.loads, predicted.load_accesses,
                  predicted.load_misses),
                 ("store", stats.store_accesses, stats.store_misses,
                  profile.stores, predicted.store_accesses,
                  predicted.store_misses))
        for kind, meas_acc, meas_miss, preds, pred_acc, pred_miss \
                in sides:
            for pc, accesses in sorted(meas_acc.items()):
                pred = preds.get(pc)
                if pred is None:
                    _diverge(name,
                             f"{config.describe()} executed {kind} "
                             f"{pc:#x} absent from analytic profile",
                             accesses, None)
                if pred.confidence != HIGH:
                    continue        # envelope covers HIGH sites only
                _require_equal(
                    name,
                    f"{config.describe()} {kind} {pc:#x} accesses",
                    pred_acc.get(pc, 0), accesses)
                if config.size < ANALYTIC_MIN_CACHE_BYTES:
                    continue
                tolerance = max(ANALYTIC_MISS_SLACK,
                                ANALYTIC_MISS_RELATIVE * accesses)
                want = meas_miss.get(pc, 0)
                got = pred_miss.get(pc, 0)
                if abs(got - want) > tolerance:
                    _diverge(name,
                             f"{config.describe()} {kind} {pc:#x} "
                             f"misses (|err| > {tolerance:.0f} on "
                             f"{accesses} accesses)", got, want)

    if case.kind == "minic" and any(
            seg.get("op") == "chain"
            for seg in case.spec.get("segments", ())):
        profile = next(iter(profiles.values()))
        if not any(pred.confidence == LOW
                   for pred in profile.loads.values()):
            _diverge(name,
                     "pointer-chase case reported no LOW-confidence "
                     "load", "all loads confident", "expected LOW")


# -- tlb oracle --------------------------------------------------------

def check_tlb(case, ctx: OracleContext) -> None:
    """TLB sweep vs. direct replay, streamed vs. materialized.

    Every geometry's sweep-served page-granular stats must equal a
    direct per-config replay; the whole sweep must be bit-identical
    across materialized, in-memory-chunked and store-round-tripped
    inputs (cold and profile-store-warmed); and the PCAX predictor
    profile must not depend on chunking either.
    """
    from repro.store import TraceStore
    from repro.tlb import pcax_profile, simulate_tlb
    trace = case_trace(case)
    tlb_configs = case.tlb_configs()
    name = "tlb"

    profile_store = ProfileStore()
    swept = simulate_tlb(trace, tlb_configs, store=profile_store)
    for tlb_config, stats in zip(tlb_configs, swept):
        mapped = tlb_config.as_cache_config()
        direct = simulate_trace(trace, mapped)
        _require_stats_equal(name, mapped, "sweep-vs-direct",
                             stats.cache, direct)

    for chunk_accesses in (7, 1024):
        streamed = simulate_tlb(trace.chunk_stream(chunk_accesses),
                                tlb_configs)
        for tlb_config, a, b in zip(tlb_configs, swept, streamed):
            _require_stats_equal(name, tlb_config.as_cache_config(),
                                 f"chunk{chunk_accesses}-vs-"
                                 f"materialized", b.cache, a.cache)

    store = TraceStore(ctx.scratch_dir() / "traces")
    store.put_trace("case", trace, chunk_accesses=64)
    cold = simulate_tlb(store.open("case"), tlb_configs,
                        store=profile_store)
    warm = simulate_tlb(store.open("case"), tlb_configs,
                        store=profile_store)
    for tlb_config, reference, a, b in zip(tlb_configs, swept, cold,
                                           warm):
        mapped = tlb_config.as_cache_config()
        _require_stats_equal(name, mapped, "store-sweep", a.cache,
                             reference.cache)
        _require_stats_equal(name, mapped, "store-warmed-sweep",
                             b.cache, reference.cache)

    page_size = tlb_configs[0].page_size
    materialized = pcax_profile(trace, page_size=page_size)
    chunked = pcax_profile(trace.chunk_stream(7), page_size=page_size)
    stored = pcax_profile(store.open("case"), page_size=page_size)
    _require_equal(name, "pcax chunked-vs-materialized",
                   chunked.loads, materialized.loads)
    _require_equal(name, "pcax store-vs-materialized",
                   stored.loads, materialized.loads)


# -- redundancy oracle -------------------------------------------------

#: The naive reference scans backwards per load (quadratic); beyond
#: this many rows only the streamed-vs-materialized comparison runs.
NAIVE_REDUNDANCY_LIMIT = 100_000


def check_redundancy(case, ctx: OracleContext) -> None:
    """Streaming analyzer vs. the naive backward-scan reference.

    The production analyzer folds per-address state over chunk
    columns; the reference re-derives every load's classification by
    scanning backwards through the materialized rows.  Both must agree
    exactly, and the analyzer must not care whether its input is
    materialized, chunked small, or store-round-tripped.
    """
    from repro.redundancy import analyze_redundancy, naive_redundancy
    from repro.store import TraceStore
    trace = case_trace(case)
    name = "redundancy"
    stats = analyze_redundancy(trace)
    for chunk_accesses in (7, 1024):
        chunked = analyze_redundancy(trace.chunk_stream(chunk_accesses))
        _require_equal(name, f"chunk{chunk_accesses}-vs-materialized",
                       chunked.loads, stats.loads)
    store = TraceStore(ctx.scratch_dir() / "traces")
    store.put_trace("case", trace, chunk_accesses=64)
    stored = analyze_redundancy(store.open("case"))
    _require_equal(name, "store-vs-materialized", stored.loads,
                   stats.loads)
    if len(trace) <= NAIVE_REDUNDANCY_LIMIT:
        reference = naive_redundancy(trace)
        _require_equal(name, "analyzer-vs-naive", stats.loads,
                       reference.loads)


# -- invariants oracle -------------------------------------------------

def check_invariants(case, ctx: OracleContext) -> None:
    """Apply every applicable single-implementation invariant."""
    from repro.fuzz import invariants
    invariants.check_case(case)


# -- registry ----------------------------------------------------------

@dataclass(frozen=True)
class Oracle:
    name: str
    kinds: tuple[str, ...]          # applicable case kinds
    check: Callable[[object, OracleContext], None]
    description: str


ORACLES: dict[str, Oracle] = {
    oracle.name: oracle for oracle in (
        Oracle("engines", ("minic", "asm"), check_engines,
               "closures vs. blocks execution engines"),
        Oracle("replay", ("minic", "asm", "trace"), check_replay,
               "simulate_trace vs. simulate_trace_multi vs. "
               "simulate_sweep (cold + re-sweep)"),
        Oracle("streaming", ("minic", "asm", "trace"), check_streaming,
               "chunked/store-streamed replay vs. materialized "
               "(stats, digests, stack-distance profiles)"),
        Oracle("service", ("minic",), check_service,
               "in-process analyze/classify vs. the served path "
               "(single server and 2-worker cluster)"),
        Oracle("pipeline", ("minic",), check_pipeline,
               "cold Session vs. disk-cache-warmed Session"),
        Oracle("analytic", ("minic",), check_analytic,
               "analytic per-PC prediction vs. the measured sweep "
               "(tolerance-gated on HIGH sites, honesty on the rest)"),
        Oracle("tlb", ("minic", "asm", "trace"), check_tlb,
               "page-granular TLB sweep vs. direct replay, streamed "
               "vs. materialized vs. store-warmed, plus the PCAX "
               "predictor profile"),
        Oracle("redundancy", ("minic", "asm", "trace"),
               check_redundancy,
               "streaming redundant-load analyzer vs. the naive "
               "backward-scan reference, across trace inputs"),
        Oracle("invariants", ("minic", "asm", "trace"), check_invariants,
               "conservation/stability/monotonicity invariants"),
    )
}


def oracles_for(kind: str,
                names: Optional[Sequence[str]] = None) -> list[Oracle]:
    """The selected oracles applicable to one case kind."""
    if names is None:
        selected = list(ORACLES.values())
    else:
        unknown = [n for n in names if n not in ORACLES]
        if unknown:
            raise ValueError(
                f"unknown oracle(s): {', '.join(unknown)} "
                f"(known: {', '.join(sorted(ORACLES))})")
        selected = [ORACLES[n] for n in names]
    return [oracle for oracle in selected if kind in oracle.kinds]
