"""Seeded, structured input generators for the fuzz harness.

Every case is generated *as a spec* — a plain JSON-able dict of
structural choices — and rendered to its concrete input (MiniC text,
assembly text, or a :class:`~repro.machine.trace.MemoryTrace`) by a
pure function of that spec.  The indirection is what makes shrinking
and the committed corpus work: the shrinker edits the spec (dropping
segments, halving sizes, deleting trace rows) and re-renders, and a
minimized spec serializes losslessly into ``tests/corpus/``.

Generation is biased toward the constructs that matter for the paper's
address patterns: nested loops, strided array walks, indirect
(``a[b[i]]``) indexing, pointer chains over heap nodes, conditional
bodies inside loops (superblock chaining), software prefetches and
computed jumps (``jr`` through a register, the blocks engine's
mid-block-entry path).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Optional

from repro.asm.program import TEXT_BASE
from repro.cache.config import CacheConfig
from repro.machine.trace import LOAD, PREFETCH, STORE, MemoryTrace
from repro.tlb import TlbConfig

#: The generator families; ``generate_case`` round-robins over these.
CASE_KINDS = ("minic", "asm", "trace")

SPEC_VERSION = 1


@dataclass
class FuzzCase:
    """One generated (or corpus-loaded) input plus its cache configs."""

    kind: str                   # "minic" | "asm" | "trace"
    spec: dict                  # JSON-able; sufficient to rebuild inputs
    label: str = ""             # human-readable provenance, e.g. "seed 7"
    _source: Optional[str] = field(default=None, repr=False)
    _trace: Optional[MemoryTrace] = field(default=None, repr=False)

    def source(self) -> str:
        """The program text (MiniC or assembly) for program-backed kinds."""
        if self.kind == "trace":
            raise ValueError("trace cases have no program source")
        if self._source is None:
            render = render_minic if self.kind == "minic" else render_asm
            self._source = render(self.spec)
        return self._source

    def trace(self) -> MemoryTrace:
        """The synthetic memory trace (``trace`` kind only)."""
        if self.kind != "trace":
            raise ValueError(f"{self.kind} cases build traces by "
                             f"execution, not from the spec")
        if self._trace is None:
            self._trace = build_trace(self.spec)
        return self._trace

    def cache_configs(self) -> list[CacheConfig]:
        return [CacheConfig(**entry)
                for entry in self.spec.get("configs", [])] \
            or [CacheConfig()]

    def tlb_configs(self) -> list[TlbConfig]:
        """dTLB geometries for the tlb oracle and invariants.

        Corpus specs predating the ``tlb`` key (and shrunk specs that
        dropped it) fall back to two small defaults chosen so the tiny
        generated footprints still produce capacity misses.
        """
        entries = self.spec.get("tlb", [])
        if entries:
            return [TlbConfig(**entry) for entry in entries]
        return [TlbConfig(page_size=64, entries=4),
                TlbConfig(page_size=256, entries=8, assoc=2)]

    def replaced(self, spec: dict) -> "FuzzCase":
        """A copy with a different spec (shrinker steps)."""
        return FuzzCase(kind=self.kind, spec=spec, label=self.label)


# -- cache-config generation -------------------------------------------

def gen_configs(rng: random.Random, max_configs: int = 4) -> list[dict]:
    """1..max_configs small geometries across all three policies.

    Sizes are kept small (512 B .. 32 KB) so generated workloads
    actually stress eviction; ``random`` configs sometimes carry a
    non-default victim-sequence seed.
    """
    configs: list[dict] = []
    for _ in range(rng.randint(1, max_configs)):
        block = rng.choice((16, 32, 32, 64))
        num_sets = 1 << rng.randint(1, 6)
        assoc = rng.choice((1, 2, 2, 4, 8))
        replacement = rng.choice(("lru", "lru", "fifo", "random"))
        entry = {"size": num_sets * assoc * block, "assoc": assoc,
                 "block_size": block, "replacement": replacement}
        if replacement == "random" and rng.random() < 0.5:
            entry["rng_seed"] = rng.randrange(1, 1 << 31)
        if entry not in configs:
            configs.append(entry)
    return configs


def gen_tlb_geometries(rng: random.Random,
                       max_geoms: int = 3) -> list[dict]:
    """1..max_geoms dTLB geometries, biased small and fully associative.

    Page sizes start at 64 B because the generated footprints are a few
    KB: a realistic 4 KiB page would make every geometry all-compulsory
    and the oracle would never see an eviction.  ``assoc=0`` is the
    fully-associative spelling (see :class:`repro.tlb.TlbConfig`).
    """
    geoms: list[dict] = []
    for _ in range(rng.randint(1, max_geoms)):
        page = rng.choice((64, 64, 128, 256, 512, 4096))
        entries = 1 << rng.randint(1, 6)
        if rng.random() < 0.7:
            assoc = 0
        else:
            sets = 1 << rng.randint(0, min(3, entries.bit_length() - 1))
            assoc = entries // sets
        entry = {"page_size": page, "entries": entries, "assoc": assoc}
        if entry not in geoms:
            geoms.append(entry)
    return geoms


# -- MiniC generation --------------------------------------------------
#
# A MiniC case is a list of *segments*, each one loop nest / chain walk
# with its structural parameters.  Segments accumulate into a global
# ``acc`` that is printed at the end, so every memory access feeds an
# observable output and engine divergences surface even without traces.

def _gen_stride(rng: random.Random, arrays: list[dict]) -> dict:
    array = rng.randrange(len(arrays))
    # Occasional zero-trip loops pin the trip-count edge the analytic
    # engine must get right; "down" walks the array with a negative
    # (possibly non-unit) induction stride through a `!= 0` bound.
    count = 0 if rng.random() < 0.08 else rng.randint(8, 200)
    return {"op": "stride", "array": array,
            "count": count,
            "step": rng.choice((1, 1, 2, 3, 4, 7, 16)),
            "dir": rng.choice(("up", "up", "up", "down")),
            "store": rng.random() < 0.4}


def _gen_nest(rng: random.Random, arrays: list[dict]) -> dict:
    return {"op": "nest", "array": rng.randrange(len(arrays)),
            "rows": rng.randint(2, 12), "cols": rng.randint(2, 24),
            "rowstep": rng.choice((1, 1, 2)),
            "colstep": rng.choice((1, 1, 2, 5))}


def _gen_indirect(rng: random.Random, arrays: list[dict]) -> dict:
    src = rng.randrange(len(arrays))
    idx = rng.randrange(len(arrays))
    return {"op": "indirect", "src": src, "idx": idx,
            "count": rng.randint(8, 120),
            "scale": rng.choice((1, 3, 5))}


def _gen_chain(rng: random.Random, arrays: list[dict]) -> dict:
    return {"op": "chain", "nodes": rng.randint(4, 60),
            "walks": rng.randint(1, 4)}


def _gen_cond(rng: random.Random, arrays: list[dict]) -> dict:
    return {"op": "cond", "array": rng.randrange(len(arrays)),
            "count": rng.randint(8, 150),
            "mask": rng.choice((1, 3, 7))}


def _gen_reload(rng: random.Random, arrays: list[dict]) -> dict:
    # Reload-heavy chains: the same few slots are re-read back to back,
    # optionally with a store in between (the reload-after-store shape
    # the redundancy analyzer must classify).
    return {"op": "reload", "array": rng.randrange(len(arrays)),
            "count": rng.randint(8, 120),
            "span": rng.choice((1, 2, 4, 8)),
            "store": rng.random() < 0.6}


_SEGMENT_GENS = (_gen_stride, _gen_stride, _gen_nest, _gen_indirect,
                 _gen_chain, _gen_cond, _gen_reload)


def gen_minic_spec(rng: random.Random) -> dict:
    arrays = [{"name": f"g{index}", "size": rng.choice((32, 64, 128, 256))}
              for index in range(rng.randint(1, 3))]
    segments = [rng.choice(_SEGMENT_GENS)(rng, arrays)
                for _ in range(rng.randint(1, 4))]
    return {"version": SPEC_VERSION, "arrays": arrays,
            "segments": segments, "configs": gen_configs(rng),
            "tlb": gen_tlb_geometries(rng)}


def _render_segment(index: int, seg: dict, arrays: list[dict]) -> str:
    def size_of(position: int) -> int:
        return arrays[position % len(arrays)]["size"]

    def name_of(position: int) -> str:
        return arrays[position % len(arrays)]["name"]

    op = seg["op"]
    if op == "stride":
        a, mask = name_of(seg["array"]), size_of(seg["array"]) - 1
        if seg.get("dir", "up") == "down":
            # descending non-unit induction: i = count*step .. step,
            # decrement by step, indexing a[(i - step) & mask]
            step = seg["step"]
            body = (f"{a}[(i - {step}) & {mask}] = acc + i;"
                    if seg["store"] else
                    f"acc = acc + {a}[(i - {step}) & {mask}];")
            return (f"    for (i = {seg['count'] * step}; i != 0; "
                    f"i = i - {step})\n"
                    f"        {body}\n")
        body = (f"{a}[(i * {seg['step']}) & {mask}] = acc + i;"
                if seg["store"] else
                f"acc = acc + {a}[(i * {seg['step']}) & {mask}];")
        return (f"    for (i = 0; i < {seg['count']}; i = i + 1)\n"
                f"        {body}\n")
    if op == "nest":
        a, mask = name_of(seg["array"]), size_of(seg["array"]) - 1
        return (f"    for (i = 0; i < {seg['rows']}; "
                f"i = i + {seg['rowstep']})\n"
                f"        for (j = 0; j < {seg['cols']}; "
                f"j = j + {seg['colstep']})\n"
                f"            acc = acc + {a}[(i * {seg['cols']} + j)"
                f" & {mask}];\n")
    if op == "indirect":
        src, src_mask = name_of(seg["src"]), size_of(seg["src"]) - 1
        idx, idx_mask = name_of(seg["idx"]), size_of(seg["idx"]) - 1
        return (f"    for (i = 0; i < {seg['count']}; i = i + 1) {{\n"
                f"        {idx}[i & {idx_mask}] = i * {seg['scale']};\n"
                f"        acc = acc + {src}[{idx}[i & {idx_mask}]"
                f" & {src_mask}];\n"
                f"    }}\n")
    if op == "chain":
        return (f"    head = NULL;\n"
                f"    for (i = 0; i < {seg['nodes']}; i = i + 1)\n"
                f"        acc = acc + push(i + {index});\n"
                f"    for (i = 0; i < {seg['walks']}; i = i + 1)\n"
                f"        acc = acc + walk();\n")
    if op == "cond":
        a, mask = name_of(seg["array"]), size_of(seg["array"]) - 1
        return (f"    for (i = 0; i < {seg['count']}; i = i + 1) {{\n"
                f"        if ((i & {seg['mask']}) == 0)\n"
                f"            {a}[i & {mask}] = acc;\n"
                f"        else\n"
                f"            acc = acc + {a}[i & {mask}] + i;\n"
                f"    }}\n")
    if op == "reload":
        a = name_of(seg["array"])
        mask = (seg["span"] - 1) & (size_of(seg["array"]) - 1)
        lines = [f"    for (i = 0; i < {seg['count']}; i = i + 1) {{\n",
                 f"        acc = acc + {a}[i & {mask}];\n",
                 f"        acc = acc + {a}[i & {mask}];\n"]
        if seg["store"]:
            lines += [f"        {a}[i & {mask}] = acc;\n",
                      f"        acc = acc + {a}[i & {mask}];\n"]
        lines.append("    }\n")
        return "".join(lines)
    raise ValueError(f"unknown segment op {op!r}")


_CHAIN_HELPERS = """
struct node { int value; struct node *next; };
struct node *head;

int push(int v) {
    struct node *n;
    n = (struct node*) malloc(sizeof(struct node));
    n->value = v;
    n->next = head;
    head = n;
    return v;
}

int walk() {
    struct node *p;
    int sum;
    sum = 0;
    p = head;
    while (p != NULL) {
        sum = sum + p->value;
        p = p->next;
    }
    return sum;
}
"""


def render_minic(spec: dict) -> str:
    arrays = spec["arrays"]
    decls = "\n".join(f"int {a['name']}[{a['size']}];" for a in arrays)
    needs_chain = any(seg["op"] == "chain" for seg in spec["segments"])
    helpers = _CHAIN_HELPERS if needs_chain else ""
    body = "".join(_render_segment(index, seg, arrays)
                   for index, seg in enumerate(spec["segments"]))
    return (f"{decls}\n{helpers}\n"
            f"int main() {{\n"
            f"    int i;\n    int j;\n    int acc;\n"
            f"    acc = 0;\n"
            f"{body}"
            f"    print_int(acc);\n"
            f"    return 0;\n"
            f"}}\n")


# -- assembly generation -----------------------------------------------
#
# Raw assembly reaches paths MiniC cannot: hand-picked base registers,
# software prefetch instructions, and computed jumps (`jr` through a
# register holding a text address) that force the blocks engine through
# its mid-block-entry stub.

def gen_asm_spec(rng: random.Random) -> dict:
    loops = []
    for _ in range(rng.randint(1, 3)):
        loops.append({
            "count": rng.randint(4, 80),
            "stride": rng.choice((4, 4, 8, 12, 32)),
            "store": rng.random() < 0.5,
            "prefetch": rng.random() < 0.3,
        })
    return {"version": SPEC_VERSION,
            "words": rng.choice((64, 128, 256)),
            "loops": loops,
            "computed_jump": rng.random() < 0.5,
            "configs": gen_configs(rng),
            "tlb": gen_tlb_geometries(rng)}


def render_asm(spec: dict) -> str:
    words = spec["words"]
    lines = ["    .text", "    .ent main", "main:",
             "    la $s0, arr", "    li $s3, 0",
             # fill the array so loads observe nonzero data
             "    li $t0, 0",
             f"    li $t1, {words}",
             "init:",
             "    sll $t2, $t0, 2",
             "    addu $t2, $s0, $t2",
             "    addiu $t3, $t0, 11",
             "    mul $t3, $t3, $t0",
             "    sw $t3, 0($t2)",
             "    addiu $t0, $t0, 1",
             "    blt $t0, $t1, init"]
    for index, loop in enumerate(spec["loops"]):
        mask = words * 4 - 4
        lines += [
            f"    li $t0, 0",
            f"    li $t1, {loop['count']}",
            f"loop{index}:",
            f"    andi $t2, $t0, {mask}",
            f"    addu $t2, $s0, $t2",
            f"    lw $t3, 0($t2)",
            f"    addu $s3, $s3, $t3",
        ]
        if loop["prefetch"]:
            lines.append(f"    pref {loop['stride']}($t2)")
        if loop["store"]:
            lines.append(f"    sw $s3, 0($t2)")
        lines += [
            f"    addiu $t0, $t0, {loop['stride']}",
            f"    addiu $t1, $t1, -1",
            f"    bnez $t1, loop{index}",
        ]
    if spec.get("computed_jump"):
        # a computed jump into the middle of the epilogue block
        lines += ["    lta $t7, mid_entry",
                  "    jr $t7",
                  "    li $s3, 0          # skipped by the jump",
                  "mid_entry:"]
    lines += ["    move $a0, $s3",
              "    li $v0, 1",
              "    syscall",
              "    li $a0, 0",
              "    li $v0, 10",
              "    syscall",
              "    .end main",
              "    .data",
              "    .align 2",
              f"arr: .space {words * 4}"]
    return "\n".join(lines) + "\n"


# -- synthetic trace generation ----------------------------------------
#
# Traces go straight at the cache engines without compiling anything.
# Rows are generated from a handful of archetypal access patterns; each
# static pc keeps a single access kind (loads, stores and prefetches
# live at distinct pcs), matching what real executions produce and what
# `shared_access_counts` assumes.

def gen_trace_spec(rng: random.Random) -> dict:
    num_loads = rng.randint(2, 8)
    num_stores = rng.randint(0, 4)
    num_prefetch = rng.randint(0, 2)
    pcs = [TEXT_BASE + 4 * index
           for index in range(num_loads + num_stores + num_prefetch)]
    rng.shuffle(pcs)
    load_pcs = pcs[:num_loads]
    store_pcs = pcs[num_loads:num_loads + num_stores]
    prefetch_pcs = pcs[num_loads + num_stores:]

    rows: list[list[int]] = []
    base = 0x1000_0000
    for _ in range(rng.randint(2, 8)):
        pattern = rng.choice(("seq", "seq", "conflict", "random",
                              "hot", "chase", "pagestraddle",
                              "pagestraddle", "reload", "reload"))
        kind_pool = ([(pc, LOAD) for pc in load_pcs]
                     + [(pc, STORE) for pc in store_pcs]
                     + [(pc, PREFETCH) for pc in prefetch_pcs])
        pc, kind = rng.choice(kind_pool)
        n = rng.randint(10, 400)
        if pattern == "pagestraddle":
            # strides a few bytes off a page size: consecutive accesses
            # keep straddling page boundaries, the edge the TLB model's
            # set mapping and the coarsening invariant must get right
            page = rng.choice((64, 128, 256, 512, 4096))
            stride = page + rng.choice((-8, -4, 4, 8, page - 4))
            start = base + page - rng.choice((4, 8, 12))
            rows += [[pc, (start + i * stride) & 0xFFFF_FFFF, kind]
                     for i in range(n)]
        elif pattern == "reload":
            # a few hot words re-read back to back, with stores from a
            # store pc splicing in when the spec has one: redundant
            # reload and reload-after-store chains
            span = rng.randint(1, 6)
            hot = [base + rng.randrange(0, 1 << 12, 4)
                   for _ in range(span)]
            store_pc = rng.choice(store_pcs) if store_pcs else None
            for i in range(n):
                address = hot[i % span]
                rows.append([pc, address, kind])
                rows.append([pc, address, kind])
                if store_pc is not None and rng.random() < 0.4:
                    rows.append([store_pc, address, STORE])
                    rows.append([pc, address, kind])
        elif pattern == "seq":
            start = base + rng.randrange(0, 1 << 16, 4)
            stride = rng.choice((4, 4, 8, 16, 32, 64, 128))
            rows += [[pc, (start + i * stride) & 0xFFFF_FFFF, kind]
                     for i in range(n)]
        elif pattern == "conflict":
            # few blocks mapping to one set: eviction-order stress
            start = base + rng.randrange(0, 1 << 12, 4)
            gap = rng.choice((1 << 10, 1 << 12, 1 << 14))
            blocks = rng.randint(2, 9)
            rows += [[pc, (start + (i % blocks) * gap) & 0xFFFF_FFFF,
                      kind] for i in range(n)]
        elif pattern == "random":
            span = rng.choice((1 << 12, 1 << 16, 1 << 20))
            rows += [[pc, base + rng.randrange(0, span), kind]
                     for _ in range(n)]
        elif pattern == "hot":
            hot = [base + rng.randrange(0, 1 << 14, 4)
                   for _ in range(rng.randint(1, 6))]
            rows += [[pc, rng.choice(hot), kind] for _ in range(n)]
        else:  # chase: a fixed pseudo-random permutation walk
            span = rng.randint(8, 128)
            order = list(range(span))
            rng.shuffle(order)
            start = base + rng.randrange(0, 1 << 14, 4)
            rows += [[pc, start + order[i % span] * 16, kind]
                     for i in range(n)]
    return {"version": SPEC_VERSION, "rows": rows,
            "configs": gen_configs(rng),
            "tlb": gen_tlb_geometries(rng)}


def build_trace(spec: dict) -> MemoryTrace:
    trace = MemoryTrace()
    for pc, address, kind in spec["rows"]:
        trace.append(pc, address, kind)
    return trace


# -- entry point -------------------------------------------------------

_SPEC_GENS = {"minic": gen_minic_spec, "asm": gen_asm_spec,
              "trace": gen_trace_spec}


def generate_case(kind: str, seed: int) -> FuzzCase:
    """Deterministically generate one case of ``kind`` from ``seed``."""
    if kind not in _SPEC_GENS:
        raise ValueError(f"unknown case kind {kind!r} "
                         f"(expected one of {CASE_KINDS})")
    rng = random.Random(f"repro-fuzz:{kind}:{seed}")
    spec = _SPEC_GENS[kind](rng)
    return FuzzCase(kind=kind, spec=spec, label=f"{kind} seed {seed}")
