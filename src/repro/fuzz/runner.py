"""The fuzz loop behind ``python -m repro fuzz``.

:func:`run_fuzz` drives generation -> oracles -> shrinking and returns
a JSON-able :class:`FuzzReport`.  :func:`run_self_check` proves the
harness can actually catch a bug: it injects an off-by-one into the
compiled-replay eviction test (sets temporarily hold ``assoc + 1``
blocks), verifies the ``replay`` oracle reports a divergence, shrinks
the failure to a corpus-sized reproducer, and verifies the minimized
case passes once the mutation is removed.
"""

from __future__ import annotations

import time
import traceback
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence

from repro.fuzz.generators import CASE_KINDS, FuzzCase, generate_case
from repro.fuzz.oracles import (DivergenceError, Oracle, OracleContext,
                                oracles_for)
from repro.fuzz.shrinker import shrink_case

#: Seeds are spread out per case index so ``--seed 1`` does not replay
#: a suffix of ``--seed 0``.
_SEED_STRIDE = 1_000_003


@dataclass
class Divergence:
    """One oracle failure, with its shrunk reproducer."""

    case_label: str
    kind: str
    oracle: str
    message: str
    spec: dict
    shrunk_spec: Optional[dict] = None
    shrink_evals: int = 0
    corpus_file: Optional[str] = None

    def to_dict(self) -> dict:
        return {
            "case": self.case_label,
            "kind": self.kind,
            "oracle": self.oracle,
            "message": self.message,
            "spec": self.spec,
            "shrunk_spec": self.shrunk_spec,
            "shrink_evals": self.shrink_evals,
            "corpus_file": self.corpus_file,
        }


@dataclass
class FuzzReport:
    """Everything one fuzz run produced."""

    seed: int
    cases_run: int = 0
    elapsed_seconds: float = 0.0
    oracle_runs: dict = field(default_factory=dict)   # name -> count
    kind_counts: dict = field(default_factory=dict)   # kind -> count
    divergences: list = field(default_factory=list)
    errors: list = field(default_factory=list)        # harness bugs

    @property
    def ok(self) -> bool:
        return not self.divergences and not self.errors

    def to_dict(self) -> dict:
        return {
            "ok": self.ok,
            "seed": self.seed,
            "cases_run": self.cases_run,
            "elapsed_seconds": round(self.elapsed_seconds, 3),
            "oracle_runs": dict(sorted(self.oracle_runs.items())),
            "kind_counts": dict(sorted(self.kind_counts.items())),
            "divergences": [d.to_dict() for d in self.divergences],
            "errors": list(self.errors),
        }


def _reproduces(oracle: Oracle, ctx: OracleContext
                ) -> Callable[[FuzzCase], bool]:
    """Shrink predicate: does this candidate still trip ``oracle``?"""
    def predicate(candidate: FuzzCase) -> bool:
        try:
            oracle.check(candidate, ctx)
        except DivergenceError:
            return True
        except Exception:
            return False    # candidate is invalid, not a reproduction
        return False
    return predicate


def run_fuzz(seed: int = 0,
             cases: Optional[int] = 200,
             time_budget: Optional[float] = None,
             oracle_names: Optional[Sequence[str]] = None,
             kinds: Sequence[str] = CASE_KINDS,
             shrink: bool = True,
             corpus_dir: Optional[Path] = None,
             max_shrink_evals: int = 400,
             progress: Optional[Callable[[str], None]] = None
             ) -> FuzzReport:
    """Generate cases and run every selected applicable oracle.

    Stops after ``cases`` cases or ``time_budget`` seconds, whichever
    comes first (pass ``cases=None`` for a purely time-boxed run).
    Failures are shrunk (unless ``shrink=False``) and, when
    ``corpus_dir`` is given, written there as corpus files.
    """
    if cases is None and time_budget is None:
        raise ValueError("need a case budget or a time budget")
    for kind in kinds:
        oracles_for(kind, oracle_names)     # validate names eagerly
    report = FuzzReport(seed=seed)
    started = time.monotonic()
    say = progress or (lambda text: None)
    with OracleContext() as ctx:
        index = 0
        while True:
            if cases is not None and index >= cases:
                break
            if time_budget is not None \
                    and time.monotonic() - started >= time_budget:
                break
            kind = kinds[index % len(kinds)]
            case = generate_case(kind,
                                 seed * _SEED_STRIDE + index)
            report.cases_run += 1
            report.kind_counts[kind] = \
                report.kind_counts.get(kind, 0) + 1
            for oracle in oracles_for(kind, oracle_names):
                try:
                    oracle.check(case, ctx)
                except DivergenceError as exc:
                    say(f"DIVERGENCE {case.label} [{oracle.name}] "
                        f"{exc.message}")
                    divergence = Divergence(
                        case_label=case.label, kind=kind,
                        oracle=oracle.name, message=exc.message,
                        spec=case.spec)
                    if shrink:
                        minimized, evals = shrink_case(
                            case, _reproduces(oracle, ctx),
                            max_evals=max_shrink_evals)
                        divergence.shrunk_spec = minimized.spec
                        divergence.shrink_evals = evals
                        case_to_save = minimized
                    else:
                        case_to_save = case
                    if corpus_dir is not None:
                        from repro.fuzz.corpus import save_case
                        path = save_case(
                            case_to_save, corpus_dir,
                            note=f"[{oracle.name}] {exc.message}")
                        divergence.corpus_file = path.name
                        say(f"saved reproducer to {path}")
                    report.divergences.append(divergence)
                except Exception:
                    # an oracle crash is a harness bug, not a finding;
                    # record it and keep fuzzing
                    report.errors.append({
                        "case": case.label,
                        "oracle": oracle.name,
                        "traceback": traceback.format_exc(limit=8),
                    })
                    say(f"ERROR {case.label} [{oracle.name}]")
                else:
                    report.oracle_runs[oracle.name] = \
                        report.oracle_runs.get(oracle.name, 0) + 1
            index += 1
    report.elapsed_seconds = time.monotonic() - started
    return report


# -- mutation self-check -----------------------------------------------

@contextmanager
def inject_eviction_off_by_one():
    """Make the compiled replay's sets hold one block too many.

    Wraps :func:`repro.cache.model._emit_cache_update` so the emitted
    eviction guard reads ``len(ways) >= assoc + 1`` — the classic
    off-by-one — and clears the compiled-replay cache so the mutation
    takes effect.  ``simulate_trace`` (a plain interpreted loop) is
    untouched, so the ``replay`` oracle must report the divergence.
    Restores both on exit.
    """
    from repro.cache import model
    from repro.cache.lru import BoundedCache
    original_emit = model._emit_cache_update
    original_cache = model._REPLAY_CACHE

    def mutated_emit(tag, config, block_var, miss_lines, indent):
        lines = original_emit(tag, config, block_var, miss_lines,
                              indent)
        needle = f"if len(ways) >= {config.assoc}:"
        patched = f"if len(ways) >= {config.assoc + 1}:"
        return [line.replace(needle, patched) for line in lines]

    model._emit_cache_update = mutated_emit
    model._REPLAY_CACHE = BoundedCache(64)
    try:
        yield
    finally:
        model._emit_cache_update = original_emit
        model._REPLAY_CACHE = original_cache


def run_self_check(seed: int = 0, cases: int = 40,
                   max_shrink_evals: int = 400,
                   progress: Optional[Callable[[str], None]] = None
                   ) -> dict:
    """Prove the harness catches (and shrinks) an injected bug.

    Returns a JSON-able dict with ``ok`` true iff the mutated run
    diverged on the ``replay`` oracle AND the shrunk reproducer passes
    once the mutation is removed.
    """
    with inject_eviction_off_by_one():
        mutated = run_fuzz(seed=seed, cases=cases,
                           oracle_names=("replay",), kinds=("trace",),
                           shrink=True,
                           max_shrink_evals=max_shrink_evals,
                           progress=progress)
    caught = bool(mutated.divergences)
    clean_after = False
    shrunk_rows = None
    original_rows = None
    if caught:
        first = mutated.divergences[0]
        original_rows = len(first.spec.get("rows", []))
        spec = first.shrunk_spec or first.spec
        shrunk_rows = len(spec.get("rows", []))
        reproducer = FuzzCase(kind=first.kind, spec=spec,
                              label="self-check reproducer")
        from repro.fuzz.oracles import ORACLES
        try:
            with OracleContext() as ctx:
                ORACLES["replay"].check(reproducer, ctx)
            clean_after = True
        except DivergenceError:
            clean_after = False
    return {
        "ok": caught and clean_after,
        "mutation": "compiled-replay eviction guard off by one "
                    "(len(ways) >= assoc+1)",
        "caught": caught,
        "divergences": len(mutated.divergences),
        "cases_run": mutated.cases_run,
        "original_rows": original_rows,
        "shrunk_rows": shrunk_rows,
        "clean_after_restore": clean_after,
    }
