"""ddmin-style minimization of failing fuzz cases.

The shrinker never edits program text or traces directly — it edits the
case *spec* (the JSON-able structural description) and re-renders, so
every intermediate candidate is well-formed by construction or rejected
by the predicate.  Two passes alternate to a fixpoint:

* **list reduction** — classic delta-debugging over every top-level
  list in the spec (``segments``, ``loops``, ``rows``, ``configs``,
  ``arrays``): remove progressively smaller chunks while the failure
  persists;
* **scalar reduction** — walk the spec's dicts (top level plus the
  dict elements of top-level lists) and shrink each integer toward 1
  by jumping to 1, then halving, then decrementing.

The *predicate* decides everything: it must return True iff the
candidate still reproduces the original failure (and False for
candidates that fail to render, crash differently, or pass).  Total
predicate evaluations are bounded by ``max_evals`` so shrinking one
case can never stall a fuzz run.
"""

from __future__ import annotations

from typing import Callable

from repro.fuzz.generators import FuzzCase

#: Spec keys whose values the scalar pass must not touch.
_FROZEN_KEYS = frozenset({"version", "op", "name"})


class Shrinker:
    """Minimizes one failing case under a reproduction predicate."""

    def __init__(self, predicate: Callable[[FuzzCase], bool],
                 max_evals: int = 400):
        self.predicate = predicate
        self.max_evals = max_evals
        self.evals = 0

    # -- plumbing -----------------------------------------------------
    def _holds(self, case: FuzzCase) -> bool:
        if self.evals >= self.max_evals:
            return False
        self.evals += 1
        return self.predicate(case)

    # -- list pass ----------------------------------------------------
    def _shrink_list(self, case: FuzzCase, key: str) -> FuzzCase:
        items = list(case.spec[key])
        granularity = 2
        while len(items) >= 2:
            chunk = max(1, len(items) // granularity)
            reduced = False
            start = 0
            while start < len(items):
                candidate_items = items[:start] + items[start + chunk:]
                candidate = case.replaced(
                    {**case.spec, key: candidate_items})
                if candidate_items and self._holds(candidate):
                    items = candidate_items
                    case = candidate
                    reduced = True
                    # keep start: the next chunk slid into this slot
                else:
                    start += chunk
            if reduced:
                granularity = max(2, granularity - 1)
            elif chunk == 1:
                break
            else:
                granularity = min(len(items), granularity * 2)
        return case

    # -- scalar pass --------------------------------------------------
    def _shrink_int(self, case: FuzzCase, path: tuple,
                    value: int) -> FuzzCase:
        def with_value(new_value: int) -> FuzzCase:
            spec = _deep_copy(case.spec)
            container = spec
            for step in path[:-1]:
                container = container[step]
            container[path[-1]] = new_value
            return case.replaced(spec)

        current = value
        candidate = with_value(1)
        if current > 1 and self._holds(candidate):
            return candidate
        while current > 1:
            candidate = with_value(current // 2)
            if self._holds(candidate):
                case, current = candidate, current // 2
                continue
            candidate = with_value(current - 1)
            if self._holds(candidate):
                case, current = candidate, current - 1
                continue
            break
        return case

    def _scalar_targets(self, spec: dict) -> list[tuple[tuple, int]]:
        targets: list[tuple[tuple, int]] = []

        def visit(container: dict, prefix: tuple) -> None:
            for key, value in container.items():
                if key in _FROZEN_KEYS:
                    continue
                if isinstance(value, bool):
                    continue
                if isinstance(value, int) and value > 1:
                    targets.append((prefix + (key,), value))

        visit(spec, ())
        for key, value in spec.items():
            if key == "rows" or not isinstance(value, list):
                continue
            for index, element in enumerate(value):
                if isinstance(element, dict):
                    visit(element, (key, index))
        return targets

    # -- driver -------------------------------------------------------
    def shrink(self, case: FuzzCase) -> FuzzCase:
        """The smallest spec found that still satisfies the predicate."""
        while self.evals < self.max_evals:
            before = case.spec
            for key, value in list(case.spec.items()):
                if isinstance(value, list) and len(value) >= 2:
                    case = self._shrink_list(case, key)
            for path, value in self._scalar_targets(case.spec):
                container = case.spec
                try:
                    for step in path[:-1]:
                        container = container[step]
                    current = container[path[-1]]
                except (IndexError, KeyError, TypeError):
                    continue    # a list pass removed this element
                if isinstance(current, int) and current > 1:
                    case = self._shrink_int(case, path, current)
            if case.spec == before:
                break
        return case


def _deep_copy(value):
    if isinstance(value, dict):
        return {k: _deep_copy(v) for k, v in value.items()}
    if isinstance(value, list):
        return [_deep_copy(v) for v in value]
    return value


def shrink_case(case: FuzzCase,
                predicate: Callable[[FuzzCase], bool],
                max_evals: int = 400) -> tuple[FuzzCase, int]:
    """Minimize ``case``; returns (minimized case, predicate evals).

    The original case is returned unchanged if the predicate cannot
    even reproduce on it (a flaky failure — the caller should keep the
    unshrunk spec).
    """
    shrinker = Shrinker(predicate, max_evals=max_evals)
    if not shrinker._holds(case):
        return case, shrinker.evals
    minimized = shrinker.shrink(case)
    return minimized, shrinker.evals
