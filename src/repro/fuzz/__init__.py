"""Differential fuzzing and invariant checking (``repro fuzz``).

The repo deliberately keeps several independent implementations of the
same contracts — two execution engines behind one dispatch loop, three
exact cache simulators, an in-process and a served analysis path, a
cold and a disk-warmed pipeline.  This package keeps those redundant
paths honest with generative testing:

* :mod:`repro.fuzz.generators` — seeded, structured generators for
  MiniC programs, raw assembly functions and synthetic memory traces,
  biased toward the constructs that matter for address patterns
  (nested loops, pointer chains, strided arrays, computed jumps);
* :mod:`repro.fuzz.oracles` — the differential-oracle registry: each
  oracle runs one input through two or more implementations and raises
  :class:`~repro.fuzz.oracles.DivergenceError` on any mismatch;
* :mod:`repro.fuzz.invariants` — single-implementation checkers for
  properties every correct result must satisfy (conservation of
  hit/miss counts, phi-score stability, classifier idempotence,
  monotonicity the paper implies);
* :mod:`repro.fuzz.shrinker` — ddmin-style minimization of failing
  cases, producing corpus-sized reproducers;
* :mod:`repro.fuzz.corpus` — the committed regression corpus under
  ``tests/corpus/`` (replayed by ``tests/test_fuzz_corpus.py``);
* :mod:`repro.fuzz.runner` — the fuzz loop behind
  ``python -m repro fuzz``, including the mutation self-check that
  proves the harness catches an injected off-by-one.
"""

from repro.fuzz.generators import CASE_KINDS, FuzzCase, generate_case
from repro.fuzz.oracles import (ORACLES, DivergenceError, OracleContext,
                                oracles_for)
from repro.fuzz.runner import FuzzReport, run_fuzz, run_self_check

__all__ = [
    "CASE_KINDS",
    "DivergenceError",
    "FuzzCase",
    "FuzzReport",
    "ORACLES",
    "OracleContext",
    "generate_case",
    "oracles_for",
    "run_fuzz",
    "run_self_check",
]
