"""Single-implementation invariant checkers.

Differential oracles need two implementations; these checkers instead
assert properties that any *one* correct result must satisfy:

* **conservation** — per-PC misses never exceed accesses, column totals
  match the trace's own kind counts, total misses are bounded below by
  the number of distinct blocks touched (every first touch is a miss);
* **LRU inclusion** — growing the associativity of an LRU cache (same
  set mapping, same block size) never adds misses;
* **phi stability** — phi(i) is a max over a load's address patterns,
  so reordering the pattern list must not change the score;
* **idempotence** — classifying the same loads twice yields identical
  scores, class sets and delinquent sets;
* **delta monotonicity** — raising the threshold delta only shrinks the
  delinquent set;
* **weight monotonicity** — raising a single class weight never lowers
  any phi(i);
* **frequency monotonicity** — H5's frequency category climbs the
  rare -> seldom -> fair ladder as E(i) grows, it never falls back;
* **TLB monotonicity** — a fully-associative LRU TLB never misses more
  per PC when entries double (inclusion) or when pages coarsen (every
  reuse window holds at most as many distinct coarse pages as fine
  ones); conservation and the compulsory floor hold at page
  granularity through the same ``check_conservation``;
* **redundancy accounting** — per PC, redundant reloads never exceed
  loads and reload-after-store never exceeds redundant; totals match
  the trace's own kind counts; a store-free trace has no
  reload-after-store; the first load of every address is never
  redundant, bounding total redundancy from above.

Violations raise :class:`~repro.fuzz.oracles.DivergenceError` with
oracle name ``invariants`` so the runner and shrinker treat them like
any other failing oracle.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.config import CacheConfig
from repro.cache.model import CacheStats, simulate_trace
from repro.heuristic.classes import (FREQ_FAIR, FREQ_RARE, FREQ_SELDOM,
                                     frequency_category)
from repro.heuristic.classifier import DelinquencyClassifier
from repro.machine.trace import PREFETCH, MemoryTrace

_NAME = "invariants"


def _fail(message: str) -> None:
    from repro.fuzz.oracles import DivergenceError
    raise DivergenceError(_NAME, message)


# -- cache accounting --------------------------------------------------

def check_conservation(trace: MemoryTrace, config: CacheConfig,
                       stats: CacheStats) -> None:
    """Hit/miss bookkeeping must be consistent with the trace itself."""
    tag = config.describe()
    for label, accesses, misses in (
            ("load", stats.load_accesses, stats.load_misses),
            ("store", stats.store_accesses, stats.store_misses)):
        for pc, count in misses.items():
            if count < 0:
                _fail(f"{tag}: negative {label} miss count at {pc:#x}")
            if count > accesses.get(pc, 0):
                _fail(f"{tag}: {label} misses {count} > accesses "
                      f"{accesses.get(pc, 0)} at {pc:#x}")
    if sum(stats.load_accesses.values()) != trace.load_count:
        _fail(f"{tag}: load accesses "
              f"{sum(stats.load_accesses.values())} != trace load "
              f"count {trace.load_count}")
    if sum(stats.store_accesses.values()) != trace.store_count:
        _fail(f"{tag}: store accesses "
              f"{sum(stats.store_accesses.values())} != trace store "
              f"count {trace.store_count}")
    if stats.prefetch_ops != trace.prefetch_count:
        _fail(f"{tag}: prefetch ops {stats.prefetch_ops} != trace "
              f"prefetch count {trace.prefetch_count}")
    if not 0 <= stats.prefetch_fills <= stats.prefetch_ops:
        _fail(f"{tag}: prefetch fills {stats.prefetch_fills} outside "
              f"[0, {stats.prefetch_ops}]")
    # Every distinct block's first touch must miss (or be a prefetch
    # fill), so total misses are bounded below by the block count.
    blocks = {address // config.block_size
              for address in trace.addresses}
    total_misses = (sum(stats.load_misses.values())
                    + sum(stats.store_misses.values())
                    + stats.prefetch_fills)
    if total_misses < len(blocks):
        _fail(f"{tag}: {total_misses} total misses for {len(blocks)} "
              f"distinct blocks (compulsory misses unaccounted)")


def check_lru_inclusion(trace: MemoryTrace,
                        config: CacheConfig,
                        stats: CacheStats) -> None:
    """LRU inclusion property: more ways, same sets -> never more
    misses (per PC, not just in aggregate)."""
    if config.replacement != "lru":
        return
    bigger = replace(config, size=config.size * 2,
                     assoc=config.assoc * 2)
    bigger_stats = simulate_trace(trace, bigger)
    for pc, count in bigger_stats.load_misses.items():
        if count > stats.load_misses.get(pc, 0):
            _fail(f"LRU inclusion violated at {pc:#x}: "
                  f"{bigger.describe()} has {count} load misses, "
                  f"{config.describe()} has "
                  f"{stats.load_misses.get(pc, 0)}")
    for pc, count in bigger_stats.store_misses.items():
        if count > stats.store_misses.get(pc, 0):
            _fail(f"LRU inclusion violated at {pc:#x}: "
                  f"{bigger.describe()} has {count} store misses, "
                  f"{config.describe()} has "
                  f"{stats.store_misses.get(pc, 0)}")


# -- TLB model ---------------------------------------------------------

def check_tlb_monotonicity(trace: MemoryTrace, tlb_config) -> None:
    """Fully-associative LRU TLB miss counts are monotone per PC.

    Doubling the entry count is LRU inclusion at page granularity;
    doubling the page size coarsens the address map, and any reuse
    window spans at most as many distinct coarse pages as fine ones,
    so every hit stays a hit.  Both comparisons run fully associative
    (where the proofs hold — set mappings can legitimately invert
    either trend) and come from one sweep pass per page size.
    """
    from repro.tlb import TlbConfig, simulate_tlb
    base = TlbConfig(page_size=tlb_config.page_size,
                     entries=tlb_config.entries, assoc=0)
    doubled = TlbConfig(page_size=base.page_size,
                        entries=base.entries * 2, assoc=0)
    coarser = TlbConfig(page_size=base.page_size * 2,
                        entries=base.entries, assoc=0)
    small, more_entries, bigger_pages = \
        simulate_tlb(trace, [base, doubled, coarser])
    for label, grown in (("doubling entries", more_entries),
                         ("doubling the page size", bigger_pages)):
        for accesses, misses, grown_misses in (
                (small.load_accesses, small.load_misses,
                 grown.load_misses),
                (small.store_accesses, small.store_misses,
                 grown.store_misses)):
            for pc, count in grown_misses.items():
                if count > misses.get(pc, 0):
                    _fail(f"{base.describe()}: {label} raised misses "
                          f"at {pc:#x} from {misses.get(pc, 0)} to "
                          f"{count}")
            for pc, count in misses.items():
                if count > accesses.get(pc, 0):
                    _fail(f"{base.describe()}: {count} misses > "
                          f"{accesses.get(pc, 0)} accesses at {pc:#x}")


# -- redundancy accounting ---------------------------------------------

def check_redundancy_accounting(trace: MemoryTrace) -> None:
    """One-implementation bounds on the redundancy analyzer."""
    from repro.machine.trace import LOAD
    from repro.redundancy import analyze_redundancy
    stats = analyze_redundancy(trace)
    for pc, load in stats.loads.items():
        if not 0 <= load.redundant <= load.accesses:
            _fail(f"redundant {load.redundant} outside "
                  f"[0, {load.accesses}] at {pc:#x}")
        if not 0 <= load.reload_after_store <= load.redundant:
            _fail(f"reload-after-store {load.reload_after_store} > "
                  f"redundant {load.redundant} at {pc:#x}")
    if stats.total_loads != trace.load_count:
        _fail(f"analyzer saw {stats.total_loads} loads, trace has "
              f"{trace.load_count}")
    if trace.store_count == 0 and stats.total_reload_after_store:
        _fail(f"{stats.total_reload_after_store} reload-after-store "
              f"events in a store-free trace")
    # The first load of each address never has a previous access to
    # reload from, so redundancy is bounded by loads minus the number
    # of addresses whose first non-prefetch access is a load.
    first_kind: dict[int, int] = {}
    for address, kind in zip(trace.addresses, trace.kinds):
        if kind != PREFETCH and address not in first_kind:
            first_kind[address] = kind
    first_loads = sum(1 for kind in first_kind.values()
                      if kind == LOAD)
    ceiling = stats.total_loads - first_loads
    if stats.total_redundant > ceiling:
        _fail(f"{stats.total_redundant} redundant loads exceed the "
              f"{ceiling} ceiling ({stats.total_loads} loads, "
              f"{first_loads} first-touch loads)")


# -- classifier properties ---------------------------------------------

def check_phi_stability(load_infos: dict) -> None:
    """phi is a max over patterns: list order must not matter.

    Only the score is order-independent — the *class set* ties break by
    first maximum, so it may legitimately change under reordering.
    """
    classifier = DelinquencyClassifier()
    for address, info in load_infos.items():
        score, _ = classifier.score_load(info)
        shuffled = replace(info,
                           patterns=list(reversed(info.patterns)),
                           features=list(reversed(info.features)))
        reordered, _ = classifier.score_load(shuffled)
        if score != reordered:
            _fail(f"phi({address:#x}) changed under pattern "
                  f"reordering: {score} != {reordered}")


def check_idempotence(load_infos: dict) -> None:
    """Classifying the same loads twice must agree exactly."""
    classifier = DelinquencyClassifier()
    first = classifier.classify(load_infos)
    second = classifier.classify(load_infos)
    for address in load_infos:
        a, b = first.loads[address], second.loads[address]
        if (a.score, a.classes, a.is_delinquent) != \
                (b.score, b.classes, b.is_delinquent):
            _fail(f"classify({address:#x}) not idempotent: "
                  f"{a} != {b}")


def check_delta_monotonicity(load_infos: dict) -> None:
    """A stricter threshold only removes loads from the delinquent
    set."""
    base = DelinquencyClassifier()
    loose = base.classify(load_infos).delinquent_set
    for delta in (base.delta * 2, base.delta + 1.0):
        strict = DelinquencyClassifier(delta=delta) \
            .classify(load_infos).delinquent_set
        if not strict <= loose:
            _fail(f"delta={delta} delinquent set {sorted(strict)} is "
                  f"not a subset of delta={base.delta} set "
                  f"{sorted(loose)}")


def check_weight_monotonicity(load_infos: dict) -> None:
    """Raising one class weight never lowers any load's phi."""
    base = DelinquencyClassifier()
    before = base.classify(load_infos).scores()
    weights = base.weights.as_dict()
    for name in weights:
        raised = dict(weights)
        raised[name] = weights[name] + 0.25
        after = DelinquencyClassifier(
            weights=base.weights.from_dict(raised)) \
            .classify(load_infos).scores()
        for address, score in before.items():
            if after[address] < score - 1e-12:
                _fail(f"raising W({name}) lowered phi({address:#x}): "
                      f"{score} -> {after[address]}")


def check_frequency_monotonicity() -> None:
    """H5's category ladder is monotone in the execution count."""
    order = {FREQ_RARE: 0, FREQ_SELDOM: 1, FREQ_FAIR: 2}
    last = -1
    for count in (0, 1, 99, 100, 999, 1000, 10_000):
        rank = order[frequency_category(count)]
        if rank < last:
            _fail(f"frequency_category({count}) fell back down the "
                  f"rare/seldom/fair ladder")
        last = rank


# -- entry point -------------------------------------------------------

def check_case(case) -> None:
    """Every invariant applicable to one fuzz case."""
    from repro.fuzz.oracles import case_trace, compile_case
    trace = case_trace(case)
    for config in case.cache_configs():
        stats = simulate_trace(trace, config)
        check_conservation(trace, config, stats)
        check_lru_inclusion(trace, config, stats)
    for tlb_config in case.tlb_configs():
        # Conservation (and its compulsory floor) holds verbatim at
        # page granularity through the cache-model mapping.
        mapped = tlb_config.as_cache_config()
        check_conservation(trace, mapped, simulate_trace(trace, mapped))
        check_tlb_monotonicity(trace, tlb_config)
    check_redundancy_accounting(trace)
    check_frequency_monotonicity()
    if case.kind in ("minic", "asm"):
        from repro.patterns.builder import build_load_infos
        load_infos = build_load_infos(compile_case(case))
        check_phi_stability(load_infos)
        check_idempotence(load_infos)
        check_delta_monotonicity(load_infos)
        check_weight_monotonicity(load_infos)
