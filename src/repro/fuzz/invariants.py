"""Single-implementation invariant checkers.

Differential oracles need two implementations; these checkers instead
assert properties that any *one* correct result must satisfy:

* **conservation** — per-PC misses never exceed accesses, column totals
  match the trace's own kind counts, total misses are bounded below by
  the number of distinct blocks touched (every first touch is a miss);
* **LRU inclusion** — growing the associativity of an LRU cache (same
  set mapping, same block size) never adds misses;
* **phi stability** — phi(i) is a max over a load's address patterns,
  so reordering the pattern list must not change the score;
* **idempotence** — classifying the same loads twice yields identical
  scores, class sets and delinquent sets;
* **delta monotonicity** — raising the threshold delta only shrinks the
  delinquent set;
* **weight monotonicity** — raising a single class weight never lowers
  any phi(i);
* **frequency monotonicity** — H5's frequency category climbs the
  rare -> seldom -> fair ladder as E(i) grows, it never falls back.

Violations raise :class:`~repro.fuzz.oracles.DivergenceError` with
oracle name ``invariants`` so the runner and shrinker treat them like
any other failing oracle.
"""

from __future__ import annotations

from dataclasses import replace

from repro.cache.config import CacheConfig
from repro.cache.model import CacheStats, simulate_trace
from repro.heuristic.classes import (FREQ_FAIR, FREQ_RARE, FREQ_SELDOM,
                                     frequency_category)
from repro.heuristic.classifier import DelinquencyClassifier
from repro.machine.trace import MemoryTrace

_NAME = "invariants"


def _fail(message: str) -> None:
    from repro.fuzz.oracles import DivergenceError
    raise DivergenceError(_NAME, message)


# -- cache accounting --------------------------------------------------

def check_conservation(trace: MemoryTrace, config: CacheConfig,
                       stats: CacheStats) -> None:
    """Hit/miss bookkeeping must be consistent with the trace itself."""
    tag = config.describe()
    for label, accesses, misses in (
            ("load", stats.load_accesses, stats.load_misses),
            ("store", stats.store_accesses, stats.store_misses)):
        for pc, count in misses.items():
            if count < 0:
                _fail(f"{tag}: negative {label} miss count at {pc:#x}")
            if count > accesses.get(pc, 0):
                _fail(f"{tag}: {label} misses {count} > accesses "
                      f"{accesses.get(pc, 0)} at {pc:#x}")
    if sum(stats.load_accesses.values()) != trace.load_count:
        _fail(f"{tag}: load accesses "
              f"{sum(stats.load_accesses.values())} != trace load "
              f"count {trace.load_count}")
    if sum(stats.store_accesses.values()) != trace.store_count:
        _fail(f"{tag}: store accesses "
              f"{sum(stats.store_accesses.values())} != trace store "
              f"count {trace.store_count}")
    if stats.prefetch_ops != trace.prefetch_count:
        _fail(f"{tag}: prefetch ops {stats.prefetch_ops} != trace "
              f"prefetch count {trace.prefetch_count}")
    if not 0 <= stats.prefetch_fills <= stats.prefetch_ops:
        _fail(f"{tag}: prefetch fills {stats.prefetch_fills} outside "
              f"[0, {stats.prefetch_ops}]")
    # Every distinct block's first touch must miss (or be a prefetch
    # fill), so total misses are bounded below by the block count.
    blocks = {address // config.block_size
              for address in trace.addresses}
    total_misses = (sum(stats.load_misses.values())
                    + sum(stats.store_misses.values())
                    + stats.prefetch_fills)
    if total_misses < len(blocks):
        _fail(f"{tag}: {total_misses} total misses for {len(blocks)} "
              f"distinct blocks (compulsory misses unaccounted)")


def check_lru_inclusion(trace: MemoryTrace,
                        config: CacheConfig,
                        stats: CacheStats) -> None:
    """LRU inclusion property: more ways, same sets -> never more
    misses (per PC, not just in aggregate)."""
    if config.replacement != "lru":
        return
    bigger = replace(config, size=config.size * 2,
                     assoc=config.assoc * 2)
    bigger_stats = simulate_trace(trace, bigger)
    for pc, count in bigger_stats.load_misses.items():
        if count > stats.load_misses.get(pc, 0):
            _fail(f"LRU inclusion violated at {pc:#x}: "
                  f"{bigger.describe()} has {count} load misses, "
                  f"{config.describe()} has "
                  f"{stats.load_misses.get(pc, 0)}")
    for pc, count in bigger_stats.store_misses.items():
        if count > stats.store_misses.get(pc, 0):
            _fail(f"LRU inclusion violated at {pc:#x}: "
                  f"{bigger.describe()} has {count} store misses, "
                  f"{config.describe()} has "
                  f"{stats.store_misses.get(pc, 0)}")


# -- classifier properties ---------------------------------------------

def check_phi_stability(load_infos: dict) -> None:
    """phi is a max over patterns: list order must not matter.

    Only the score is order-independent — the *class set* ties break by
    first maximum, so it may legitimately change under reordering.
    """
    classifier = DelinquencyClassifier()
    for address, info in load_infos.items():
        score, _ = classifier.score_load(info)
        shuffled = replace(info,
                           patterns=list(reversed(info.patterns)),
                           features=list(reversed(info.features)))
        reordered, _ = classifier.score_load(shuffled)
        if score != reordered:
            _fail(f"phi({address:#x}) changed under pattern "
                  f"reordering: {score} != {reordered}")


def check_idempotence(load_infos: dict) -> None:
    """Classifying the same loads twice must agree exactly."""
    classifier = DelinquencyClassifier()
    first = classifier.classify(load_infos)
    second = classifier.classify(load_infos)
    for address in load_infos:
        a, b = first.loads[address], second.loads[address]
        if (a.score, a.classes, a.is_delinquent) != \
                (b.score, b.classes, b.is_delinquent):
            _fail(f"classify({address:#x}) not idempotent: "
                  f"{a} != {b}")


def check_delta_monotonicity(load_infos: dict) -> None:
    """A stricter threshold only removes loads from the delinquent
    set."""
    base = DelinquencyClassifier()
    loose = base.classify(load_infos).delinquent_set
    for delta in (base.delta * 2, base.delta + 1.0):
        strict = DelinquencyClassifier(delta=delta) \
            .classify(load_infos).delinquent_set
        if not strict <= loose:
            _fail(f"delta={delta} delinquent set {sorted(strict)} is "
                  f"not a subset of delta={base.delta} set "
                  f"{sorted(loose)}")


def check_weight_monotonicity(load_infos: dict) -> None:
    """Raising one class weight never lowers any load's phi."""
    base = DelinquencyClassifier()
    before = base.classify(load_infos).scores()
    weights = base.weights.as_dict()
    for name in weights:
        raised = dict(weights)
        raised[name] = weights[name] + 0.25
        after = DelinquencyClassifier(
            weights=base.weights.from_dict(raised)) \
            .classify(load_infos).scores()
        for address, score in before.items():
            if after[address] < score - 1e-12:
                _fail(f"raising W({name}) lowered phi({address:#x}): "
                      f"{score} -> {after[address]}")


def check_frequency_monotonicity() -> None:
    """H5's category ladder is monotone in the execution count."""
    order = {FREQ_RARE: 0, FREQ_SELDOM: 1, FREQ_FAIR: 2}
    last = -1
    for count in (0, 1, 99, 100, 999, 1000, 10_000):
        rank = order[frequency_category(count)]
        if rank < last:
            _fail(f"frequency_category({count}) fell back down the "
                  f"rare/seldom/fair ladder")
        last = rank


# -- entry point -------------------------------------------------------

def check_case(case) -> None:
    """Every invariant applicable to one fuzz case."""
    from repro.fuzz.oracles import case_trace, compile_case
    trace = case_trace(case)
    for config in case.cache_configs():
        stats = simulate_trace(trace, config)
        check_conservation(trace, config, stats)
        check_lru_inclusion(trace, config, stats)
    check_frequency_monotonicity()
    if case.kind in ("minic", "asm"):
        from repro.patterns.builder import build_load_infos
        load_infos = build_load_infos(compile_case(case))
        check_phi_stability(load_infos)
        check_idempotence(load_infos)
        check_delta_monotonicity(load_infos)
        check_weight_monotonicity(load_infos)
