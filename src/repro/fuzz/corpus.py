"""The committed regression corpus.

Every failure the fuzzer finds (after shrinking) can be serialized to
a small JSON file and committed under ``tests/corpus/``;
``tests/test_fuzz_corpus.py`` replays every committed case through all
applicable oracles on each test run.  The corpus therefore does double
duty: it pins down once-seen bugs forever, and it seeds the harness
with inputs known to reach interesting code.

Files are named ``<kind>-<spec digest>.json``, so re-saving the same
minimized case is idempotent and two different failures can never
collide.  The payload is exactly what :class:`FuzzCase` needs to
rebuild the input:

.. code-block:: json

    {"schema": 1, "kind": "trace", "label": "trace seed 7",
     "note": "off-by-one eviction repro", "spec": {...}}
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path
from typing import Optional

from repro.fuzz.generators import CASE_KINDS, FuzzCase

CORPUS_SCHEMA = 1


def spec_digest(spec: dict) -> str:
    """Content address of one spec (stable across dict ordering)."""
    canonical = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(canonical.encode()).hexdigest()[:12]


def case_filename(case: FuzzCase) -> str:
    return f"{case.kind}-{spec_digest(case.spec)}.json"


def save_case(case: FuzzCase, directory: Path,
              note: str = "") -> Path:
    """Write one case into the corpus; returns the file path."""
    directory = Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    path = directory / case_filename(case)
    payload = {"schema": CORPUS_SCHEMA, "kind": case.kind,
               "label": case.label, "note": note, "spec": case.spec}
    path.write_text(json.dumps(payload, indent=2, sort_keys=True)
                    + "\n")
    return path


def load_case(path: Path) -> FuzzCase:
    """Rebuild one corpus case; raises ValueError on a bad file."""
    payload = json.loads(Path(path).read_text())
    if payload.get("schema") != CORPUS_SCHEMA:
        raise ValueError(f"{path}: unsupported corpus schema "
                         f"{payload.get('schema')!r}")
    kind = payload.get("kind")
    if kind not in CASE_KINDS:
        raise ValueError(f"{path}: unknown case kind {kind!r}")
    spec = payload.get("spec")
    if not isinstance(spec, dict):
        raise ValueError(f"{path}: spec must be an object")
    label = payload.get("label") or Path(path).stem
    return FuzzCase(kind=kind, spec=spec, label=label)


def load_corpus(directory: Path) -> list[tuple[Path, FuzzCase]]:
    """Every case in ``directory``, sorted by filename."""
    directory = Path(directory)
    if not directory.is_dir():
        return []
    return [(path, load_case(path))
            for path in sorted(directory.glob("*.json"))]


def default_corpus_dir() -> Optional[Path]:
    """``tests/corpus/`` when running from a source checkout."""
    for parent in Path(__file__).resolve().parents:
        candidate = parent / "tests" / "corpus"
        if candidate.is_dir():
            return candidate
    return None
