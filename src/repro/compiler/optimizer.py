"""AST-level optimizations used by the ``-O`` compilation mode.

The optimized mode models what the paper's ``gcc -O`` does to address
patterns: constants are folded (so fewer ``li``/``lw`` round trips) and —
implemented in the code generator — scalar locals are promoted to ``$s``
registers.  This module performs the tree rewrites:

* constant folding of arithmetic, comparisons and casts;
* algebraic identities (``x + 0``, ``x * 1``, ``x * 0``);
* strength reduction of multiplication by a power of two to a shift.

The strength reduction keeps the AG3 (mul/shift) class membership intact:
the paper's class deliberately covers both operations.
"""

from __future__ import annotations

from typing import Optional

from repro.lang import astnodes as ast
from repro.lang.sema import const_value
from repro.lang.types import FLOAT, INT, FloatType


def _literal(value, ty, line: int) -> ast.Expr:
    if isinstance(ty, FloatType) or isinstance(value, float):
        node: ast.Expr = ast.FloatLit(line=line, value=float(value))
        node.ty = FLOAT
    else:
        node = ast.IntLit(line=line, value=int(value))
        node.ty = INT
    return node


def fold_expr(expr: ast.Expr) -> ast.Expr:
    """Return a folded replacement for ``expr`` (children rewritten)."""
    if isinstance(expr, ast.Binary):
        expr.left = fold_expr(expr.left)
        expr.right = fold_expr(expr.right)
        value = const_value(expr)
        if value is not None:
            return _literal(value, expr.ty, expr.line)
        return _algebraic(expr)
    if isinstance(expr, ast.Unary):
        expr.operand = fold_expr(expr.operand)
        value = const_value(expr)
        if value is not None:
            return _literal(value, expr.ty, expr.line)
        return expr
    if isinstance(expr, ast.Cast):
        expr.operand = fold_expr(expr.operand)
        value = const_value(expr)
        if value is not None:
            return _literal(value, expr.target, expr.line)
        return expr
    if isinstance(expr, ast.Deref):
        expr.operand = fold_expr(expr.operand)
        return expr
    if isinstance(expr, ast.AddressOf):
        expr.operand = fold_expr(expr.operand)
        return expr
    if isinstance(expr, ast.Index):
        expr.base = fold_expr(expr.base)
        expr.index = fold_expr(expr.index)
        return expr
    if isinstance(expr, ast.Member):
        expr.base = fold_expr(expr.base)
        return expr
    if isinstance(expr, ast.Call):
        expr.args = [fold_expr(arg) for arg in expr.args]
        return expr
    if isinstance(expr, ast.SizeOf):
        return _literal(expr.target.size, INT, expr.line)
    return expr


def _int_const(expr: ast.Expr) -> Optional[int]:
    if isinstance(expr, (ast.IntLit, ast.CharLit)):
        return expr.value
    return None


def _algebraic(expr: ast.Binary) -> ast.Expr:
    left_const = _int_const(expr.left)
    right_const = _int_const(expr.right)
    ty = expr.ty
    if expr.op == "+":
        if right_const == 0:
            return expr.left
        if left_const == 0:
            return expr.right
    elif expr.op == "-":
        if right_const == 0:
            return expr.left
    elif expr.op == "*":
        if right_const == 1:
            return expr.left
        if left_const == 1:
            return expr.right
        if not isinstance(ty, FloatType):
            for this_const, other in ((right_const, expr.left),
                                      (left_const, expr.right)):
                if this_const is not None and this_const > 1 \
                        and this_const & (this_const - 1) == 0:
                    shift = ast.Binary(
                        line=expr.line, op="<<", left=other,
                        right=_literal(this_const.bit_length() - 1, INT,
                                       expr.line))
                    shift.ty = ty
                    return shift
    elif expr.op == "/":
        if right_const == 1:
            return expr.left
    return expr


def fold_stmt(stmt: ast.Stmt) -> None:
    if isinstance(stmt, ast.Block):
        for inner in stmt.statements:
            fold_stmt(inner)
    elif isinstance(stmt, ast.VarDecl):
        if stmt.init is not None:
            stmt.init = fold_expr(stmt.init)
    elif isinstance(stmt, ast.Assign):
        stmt.target = fold_expr(stmt.target)
        stmt.value = fold_expr(stmt.value)
    elif isinstance(stmt, ast.ExprStmt):
        stmt.expr = fold_expr(stmt.expr)
    elif isinstance(stmt, ast.If):
        stmt.cond = fold_expr(stmt.cond)
        fold_stmt(stmt.then)
        if stmt.orelse is not None:
            fold_stmt(stmt.orelse)
    elif isinstance(stmt, ast.While):
        stmt.cond = fold_expr(stmt.cond)
        fold_stmt(stmt.body)
    elif isinstance(stmt, ast.For):
        if stmt.init is not None:
            fold_stmt(stmt.init)
        if stmt.cond is not None:
            stmt.cond = fold_expr(stmt.cond)
        if stmt.step is not None:
            fold_stmt(stmt.step)
        fold_stmt(stmt.body)
    elif isinstance(stmt, ast.Return):
        if stmt.value is not None:
            stmt.value = fold_expr(stmt.value)


def fold_unit(unit: ast.TranslationUnit) -> None:
    """Fold every function body in place (globals stay untouched: their
    initializers must already be constant)."""
    for func in unit.functions:
        if func.body is not None:
            fold_stmt(func.body)
