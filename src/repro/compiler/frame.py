"""Stack frame layout.

Mirrors unoptimized MIPS codegen: every local and every parameter gets a
stack slot addressed off ``$sp`` (the frame pointer is not used, matching
the paper's address patterns which are written over ``sp``), ``$ra`` is
saved at the top of the frame, and a fixed block of spill slots supports
expression temporaries that must survive calls.

Frame picture (offsets from ``$sp`` after the prologue)::

    frame_size-4   saved $ra
    ...            saved $s registers (optimized mode only)
    ...            parameter shadow slots
    ...            locals (arrays/structs aligned to 4)
    0..SPILL-1     expression spill slots
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.lang.types import Type

SPILL_SLOTS = 12
SPILL_BYTES = SPILL_SLOTS * 4


@dataclass
class Slot:
    name: str
    offset: int
    type: Type


@dataclass
class Frame:
    """Layout for one function, built incrementally then finalized."""

    function: str
    slots: dict[str, Slot] = field(default_factory=dict)
    saved_regs: list[int] = field(default_factory=list)
    _cursor: int = SPILL_BYTES
    frame_size: int = 0
    finalized: bool = False

    def add_variable(self, name: str, ty: Type) -> Slot:
        if self.finalized:
            raise RuntimeError("frame already finalized")
        align = max(ty.alignment, 4)
        self._cursor = (self._cursor + align - 1) & ~(align - 1)
        size = max(ty.size, 4)
        slot = Slot(name, self._cursor, ty)
        self.slots[name] = slot
        self._cursor += (size + 3) & ~3
        return slot

    def finalize(self, saved_regs: list[int]) -> None:
        """Fix the frame size: locals, then saved registers, then $ra."""
        self.saved_regs = list(saved_regs)
        top = (self._cursor + 3) & ~3
        top += 4 * len(saved_regs)
        top += 4                       # saved $ra
        self.frame_size = (top + 7) & ~7
        self.finalized = True

    def slot(self, name: str) -> Slot:
        return self.slots[name]

    @property
    def ra_offset(self) -> int:
        assert self.finalized
        return self.frame_size - 4

    def saved_reg_offset(self, position: int) -> int:
        assert self.finalized
        return self.frame_size - 8 - 4 * position

    def spill_offset(self, index: int) -> int:
        if index >= SPILL_SLOTS:
            raise RuntimeError("expression too complex: out of spill slots")
        return 4 * index
