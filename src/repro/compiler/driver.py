"""Compiler driver: MiniC source to an executable :class:`Program`.

``compile_source`` is the single entry point the pipeline, workloads and
examples use.  It chains parse -> semantic analysis -> (optional folding +
register promotion) codegen -> runtime linkage -> assembly, then patches
the two pieces of layout-dependent state: gp-relative offsets in the debug
symbol table (the BDH baseline needs them) and the initial heap break used
by the bump allocator.
"""

from __future__ import annotations

import struct

from repro.asm.assembler import assemble
from repro.asm.program import Program
from repro.compiler.codegen import Codegen, CodegenError
from repro.lang.parser import parse
from repro.lang.sema import analyze

__all__ = ["compile_source", "generate_assembly", "CodegenError"]


def generate_assembly(source: str, optimize: bool = False) -> str:
    """Compile MiniC ``source`` to assembly text (no assembling)."""
    unit = analyze(parse(source))
    return Codegen(unit, optimize=optimize).generate()


def compile_source(source: str, optimize: bool = False) -> Program:
    """Compile MiniC ``source`` into a runnable, analyzable program."""
    unit = analyze(parse(source))
    generator = Codegen(unit, optimize=optimize)
    asm_text = generator.generate()
    program = assemble(asm_text, symtab=generator.symtab)

    # Fill in gp-relative offsets for global debug records.
    for name, info in generator.symtab.globals.items():
        address = program.symbols[name]
        info.offset = address - program.gp_value

    # Point the bump allocator at the heap base.
    heap_ptr_offset = program.symbols["__heap_ptr"] - program.data_base
    program.data[heap_ptr_offset:heap_ptr_offset + 4] = struct.pack(
        "<I", program.heap_base)
    return program
