"""MiniC code generator targeting the MIPS-like ISA.

Two modes, mirroring the two compiler settings the paper evaluates:

* **unoptimized** (default, like ``gcc`` with no flags): every local and
  parameter lives in a stack slot addressed off ``$sp``; every use loads it
  back.  This is the mode the paper trains its weights on — address
  patterns are full of ``off($sp)`` dereferences.
* **optimized** (``-O``): scalar locals whose address is never taken are
  promoted to ``$s`` registers (parameters of leaf functions stay in their
  ``$a`` registers), constants are folded, and array indexing runs on
  registers.  Address patterns become shorter and register recurrences
  become directly visible, exactly the effect Section 8.3 studies.

Shared idioms (both modes) that the heuristic keys on:

* globals are addressed ``%gp``-relative (MIPS small-data convention);
* array indexing scales with ``sll`` for power-of-two element sizes and
  ``mul`` otherwise;
* ``malloc``/``calloc`` are real runtime functions called with ``jal``, so
  heap pointers are born in ``$v0`` (the paper's ``reg_ret`` base).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Union

from repro.compiler.frame import Frame
from repro.lang import astnodes as ast
from repro.lang.sema import FunctionSig, const_value
from repro.lang.types import (
    ArrayType, CharType, FloatType, PointerType, StructType, Type,
)
from repro.isa.registers import GP, SP, register_name
from repro.machine.simulator import float_to_bits

_TEMPS = (8, 9, 10, 11, 12, 13, 14, 15, 24, 25)          # $t0-$t9
_SAVED = (16, 17, 18, 19, 20, 21, 22, 23)                # $s0-$s7
_ARGS = (4, 5, 6, 7)                                      # $a0-$a3

#: Builtins lowered to inline syscalls (everything else is a jal).
_INLINE_BUILTINS = frozenset(("print_int", "print_char", "read_int"))

#: Offset operand: a plain byte offset or a (global-name, addend) pair that
#: renders as a %gp relocation.
Off = Union[int, tuple]


class CodegenError(Exception):
    pass


def _fmt_off(off: Off) -> str:
    if isinstance(off, int):
        return str(off)
    name, addend = off
    if addend:
        return f"%gp({name}){addend:+d}"
    return f"%gp({name})"


def _bump(off: Off, delta: int) -> Off:
    if isinstance(off, int):
        return off + delta
    name, addend = off
    return (name, addend + delta)


@dataclass
class Addr:
    """A partially folded address: base register plus constant offset."""

    reg: int
    off: Off
    owned: bool          # True when reg is a temp the caller must release


def _is_float(ty: Optional[Type]) -> bool:
    return isinstance(ty, FloatType)


def _log2(value: int) -> Optional[int]:
    if value > 0 and value & (value - 1) == 0:
        return value.bit_length() - 1
    return None


class FunctionCodegen:
    """Generates assembly for one function body."""

    def __init__(self, parent: "Codegen", func: ast.FuncDecl):
        self.parent = parent
        self.func = func
        self.optimize = parent.optimize
        self.lines: list[str] = []
        self.frame = Frame(func.name)
        self._free = list(_TEMPS)
        self._live: list[int] = []
        self._labels = 0
        self._break_stack: list[str] = []
        self._continue_stack: list[str] = []
        self.promoted: dict[str, int] = {}      # var name -> $s register
        self.param_regs: dict[str, int] = {}    # leaf params kept in $a
        self._used_saved: list[int] = []
        self._spill_depth = 0

    # -- emission ------------------------------------------------------
    def emit(self, line: str) -> None:
        self.lines.append("    " + line)

    def emit_label(self, label: str) -> None:
        self.lines.append(f"{label}:")

    def new_label(self, hint: str) -> str:
        self._labels += 1
        return f".L_{self.func.name}_{hint}_{self._labels}"

    # -- temp registers ---------------------------------------------------
    def acquire(self) -> int:
        if not self._free:
            raise CodegenError(
                f"{self.func.name}: expression too complex "
                "(out of temporaries)")
        reg = self._free.pop(0)
        self._live.append(reg)
        return reg

    def release(self, reg: int) -> None:
        if reg in self._live:
            self._live.remove(reg)
            self._free.insert(0, reg)

    def release_addr(self, addr: Addr) -> None:
        if addr.owned:
            self.release(addr.reg)

    # -- analysis for promotion ----------------------------------------
    def _analyze(self) -> tuple[dict[str, int], set[str], bool]:
        """Count variable uses, find address-taken names and leaf-ness."""
        uses: dict[str, int] = {}
        addr_taken: set[str] = set()
        has_call = False

        def walk_expr(expr: ast.Expr) -> None:
            nonlocal has_call
            if isinstance(expr, ast.Var):
                uses[expr.name] = uses.get(expr.name, 0) + 1
            elif isinstance(expr, ast.Binary):
                walk_expr(expr.left)
                walk_expr(expr.right)
            elif isinstance(expr, (ast.Unary, ast.Deref, ast.Cast)):
                walk_expr(expr.operand)
            elif isinstance(expr, ast.AddressOf):
                inner = expr.operand
                if isinstance(inner, ast.Var):
                    addr_taken.add(inner.name)
                walk_expr(inner)
            elif isinstance(expr, ast.Index):
                walk_expr(expr.base)
                walk_expr(expr.index)
            elif isinstance(expr, ast.Member):
                walk_expr(expr.base)
            elif isinstance(expr, ast.Call):
                sig = getattr(expr, "sig", None)
                if sig is None or not (sig.is_builtin
                                       and expr.name in _INLINE_BUILTINS):
                    has_call = True
                for arg in expr.args:
                    walk_expr(arg)

        def walk_stmt(stmt: ast.Stmt) -> None:
            if isinstance(stmt, ast.Block):
                for inner in stmt.statements:
                    walk_stmt(inner)
            elif isinstance(stmt, ast.VarDecl):
                if stmt.init is not None:
                    walk_expr(stmt.init)
            elif isinstance(stmt, ast.Assign):
                walk_expr(stmt.target)
                walk_expr(stmt.value)
            elif isinstance(stmt, ast.ExprStmt):
                walk_expr(stmt.expr)
            elif isinstance(stmt, ast.If):
                walk_expr(stmt.cond)
                walk_stmt(stmt.then)
                if stmt.orelse:
                    walk_stmt(stmt.orelse)
            elif isinstance(stmt, ast.While):
                walk_expr(stmt.cond)
                walk_stmt(stmt.body)
            elif isinstance(stmt, ast.For):
                if stmt.init:
                    walk_stmt(stmt.init)
                if stmt.cond:
                    walk_expr(stmt.cond)
                if stmt.step:
                    walk_stmt(stmt.step)
                walk_stmt(stmt.body)
            elif isinstance(stmt, ast.Return):
                if stmt.value:
                    walk_expr(stmt.value)

        walk_stmt(self.func.body)
        return uses, addr_taken, not has_call

    # -- top level ---------------------------------------------------
    def generate(self) -> list[str]:
        func = self.func
        if len(func.params) > len(_ARGS):
            raise CodegenError(
                f"{func.name}: more than {len(_ARGS)} parameters "
                "not supported")

        uses, addr_taken, is_leaf = self._analyze()
        locals_list: list[ast.VarDecl] = getattr(func, "all_locals", [])

        if self.optimize:
            self._plan_promotion(uses, addr_taken, is_leaf, locals_list)

        # Stack slots for parameters and non-promoted locals.
        for param in func.params:
            if param.name not in self.promoted \
                    and param.name not in self.param_regs:
                self.frame.add_variable(param.name, param.type)
        for decl in locals_list:
            if decl.name not in self.promoted:
                self.frame.add_variable(decl.name, decl.type)
        self.frame.finalize(self._used_saved)

        self._prologue()
        for stmt in func.body.statements:
            self.gen_stmt(stmt)
        self._epilogue()
        self._record_debug_info()
        return self.lines

    def _plan_promotion(self, uses: dict[str, int], addr_taken: set[str],
                        is_leaf: bool,
                        locals_list: list[ast.VarDecl]) -> None:
        candidates: list[tuple[int, str]] = []
        for decl in locals_list:
            if decl.type.is_scalar and decl.name not in addr_taken:
                candidates.append((uses.get(decl.name, 0), decl.name))
        promotable_params = [
            p for p in self.func.params
            if p.type.is_scalar and p.name not in addr_taken
        ]
        if is_leaf:
            for position, param in enumerate(self.func.params):
                if param in promotable_params:
                    self.param_regs[param.name] = _ARGS[position]
        else:
            for param in promotable_params:
                candidates.append((uses.get(param.name, 0) + 1, param.name))
        candidates.sort(reverse=True)
        for _, name in candidates[:len(_SAVED)]:
            reg = _SAVED[len(self.promoted)]
            self.promoted[name] = reg
            self._used_saved.append(reg)

    def _prologue(self) -> None:
        func = self.func
        frame = self.frame
        self.emit_label(func.name)
        self.emit(f"addiu $sp, $sp, -{frame.frame_size}")
        self.emit(f"sw $ra, {frame.ra_offset}($sp)")
        for position, reg in enumerate(frame.saved_regs):
            self.emit(f"sw {register_name(reg)}, "
                      f"{frame.saved_reg_offset(position)}($sp)")
        for position, param in enumerate(func.params):
            name = param.name
            if name in self.param_regs:
                continue
            if name in self.promoted:
                self.emit(f"move {register_name(self.promoted[name])}, "
                          f"{register_name(_ARGS[position])}")
            else:
                slot = frame.slot(name)
                store = "sb" if isinstance(param.type, CharType) else "sw"
                self.emit(f"{store} {register_name(_ARGS[position])}, "
                          f"{slot.offset}($sp)")

    def _epilogue(self) -> None:
        frame = self.frame
        self.emit_label(self._exit_label())
        for position, reg in enumerate(frame.saved_regs):
            self.emit(f"lw {register_name(reg)}, "
                      f"{frame.saved_reg_offset(position)}($sp)")
        self.emit(f"lw $ra, {frame.ra_offset}($sp)")
        self.emit(f"addiu $sp, $sp, {frame.frame_size}")
        self.emit("jr $ra")

    def _exit_label(self) -> str:
        return f".L_{self.func.name}_exit"

    def _record_debug_info(self) -> None:
        from repro.asm.symtab import FunctionInfo, VariableInfo
        from repro.compiler.typeconv import to_typedesc
        info = FunctionInfo(
            name=self.func.name,
            frame_size=self.frame.frame_size,
            param_types=[to_typedesc(p.type) for p in self.func.params],
            return_type=to_typedesc(self.func.ret_type)
            if not self.func.ret_type.is_void else None,
        )
        for slot in self.frame.slots.values():
            info.locals.append(VariableInfo(
                name=slot.name, type=to_typedesc(slot.type),
                region="stack", offset=slot.offset,
                function=self.func.name))
        self.parent.symtab.add_function(info)

    # -- statements ---------------------------------------------------
    def gen_stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.Block):
            for inner in stmt.statements:
                self.gen_stmt(inner)
        elif isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                self._store_to_var(stmt.name, stmt.type, stmt.init)
        elif isinstance(stmt, ast.Assign):
            self.gen_assign(stmt)
        elif isinstance(stmt, ast.ExprStmt):
            reg = self.gen_expr(stmt.expr, want_value=False)
            if reg is not None:
                self.release(reg)
        elif isinstance(stmt, ast.If):
            self.gen_if(stmt)
        elif isinstance(stmt, ast.While):
            self.gen_while(stmt)
        elif isinstance(stmt, ast.For):
            self.gen_for(stmt)
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                reg = self.gen_expr(stmt.value)
                self.emit(f"move $v0, {register_name(reg)}")
                self.release(reg)
            self.emit(f"b {self._exit_label()}")
        elif isinstance(stmt, ast.Break):
            self.emit(f"b {self._break_stack[-1]}")
        elif isinstance(stmt, ast.Continue):
            self.emit(f"b {self._continue_stack[-1]}")
        else:  # pragma: no cover
            raise CodegenError(f"unhandled statement {type(stmt).__name__}")

    def _store_to_var(self, name: str, ty: Type, value: ast.Expr) -> None:
        reg = self.gen_expr(value)
        if name in self.promoted:
            self.emit(f"move {register_name(self.promoted[name])}, "
                      f"{register_name(reg)}")
        elif name in self.param_regs:
            self.emit(f"move {register_name(self.param_regs[name])}, "
                      f"{register_name(reg)}")
        else:
            slot = self.frame.slot(name)
            store = "sb" if isinstance(ty, CharType) else "sw"
            self.emit(f"{store} {register_name(reg)}, {slot.offset}($sp)")
        self.release(reg)

    def gen_assign(self, stmt: ast.Assign) -> None:
        target = stmt.target
        if isinstance(target, ast.Var):
            symbol = target.symbol
            if symbol.kind != "global" and (target.name in self.promoted
                                            or target.name in self.param_regs):
                self._store_to_var(target.name, symbol.type, stmt.value)
                return
        value = self.gen_expr(stmt.value)
        addr = self.gen_address(target)
        store = "sb" if isinstance(target.ty, CharType) else "sw"
        self.emit(f"{store} {register_name(value)}, "
                  f"{_fmt_off(addr.off)}({register_name(addr.reg)})")
        self.release(value)
        self.release_addr(addr)

    def gen_if(self, stmt: ast.If) -> None:
        else_label = self.new_label("else")
        end_label = self.new_label("endif") if stmt.orelse else else_label
        cond = self.gen_expr(stmt.cond)
        self.emit(f"beqz {register_name(cond)}, {else_label}")
        self.release(cond)
        self.gen_stmt(stmt.then)
        if stmt.orelse is not None:
            self.emit(f"b {end_label}")
            self.emit_label(else_label)
            self.gen_stmt(stmt.orelse)
            self.emit_label(end_label)
        else:
            self.emit_label(else_label)

    def gen_while(self, stmt: ast.While) -> None:
        head = self.new_label("while")
        end = self.new_label("wend")
        self.emit_label(head)
        cond = self.gen_expr(stmt.cond)
        self.emit(f"beqz {register_name(cond)}, {end}")
        self.release(cond)
        self._break_stack.append(end)
        self._continue_stack.append(head)
        self.gen_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.emit(f"b {head}")
        self.emit_label(end)

    def gen_for(self, stmt: ast.For) -> None:
        head = self.new_label("for")
        step_label = self.new_label("fstep")
        end = self.new_label("fend")
        if stmt.init is not None:
            self.gen_stmt(stmt.init)
        self.emit_label(head)
        if stmt.cond is not None:
            cond = self.gen_expr(stmt.cond)
            self.emit(f"beqz {register_name(cond)}, {end}")
            self.release(cond)
        self._break_stack.append(end)
        self._continue_stack.append(step_label)
        self.gen_stmt(stmt.body)
        self._break_stack.pop()
        self._continue_stack.pop()
        self.emit_label(step_label)
        if stmt.step is not None:
            self.gen_stmt(stmt.step)
        self.emit(f"b {head}")
        self.emit_label(end)

    # -- addresses -----------------------------------------------------
    def gen_address(self, expr: ast.Expr) -> Addr:
        if isinstance(expr, ast.Var):
            symbol = expr.symbol
            if symbol.kind == "global":
                return Addr(GP, (expr.name, 0), owned=False)
            if expr.name in self.promoted or expr.name in self.param_regs:
                raise CodegenError(
                    f"internal: address of promoted variable {expr.name}")
            slot = self.frame.slot(expr.name)
            return Addr(SP, slot.offset, owned=False)
        if isinstance(expr, ast.Index):
            return self._index_address(expr)
        if isinstance(expr, ast.Member):
            fld = expr.field
            if expr.arrow:
                base = self.gen_expr(expr.base)
                return Addr(base, fld.offset, owned=True)
            addr = self.gen_address(expr.base)
            return Addr(addr.reg, _bump(addr.off, fld.offset), addr.owned)
        if isinstance(expr, ast.Deref):
            reg = self.gen_expr(expr.operand)
            return Addr(reg, 0, owned=True)
        raise CodegenError(
            f"internal: not an addressable expression "
            f"{type(expr).__name__}")

    def _index_address(self, expr: ast.Index) -> Addr:
        base_ty = expr.base.ty
        if isinstance(base_ty, ArrayType):
            base = self.gen_address(expr.base)
            elem = base_ty.elem
        else:
            assert isinstance(base_ty, PointerType)
            reg = self.gen_expr(expr.base)
            base = Addr(reg, 0, owned=True)
            elem = base_ty.target
        constant = const_value(expr.index)
        if constant is not None:
            return Addr(base.reg, _bump(base.off, int(constant) * elem.size),
                        base.owned)
        index = self.gen_expr(expr.index)
        scaled = self._scale(index, elem.size)
        if base.owned:
            self.emit(f"addu {register_name(base.reg)}, "
                      f"{register_name(base.reg)}, {register_name(scaled)}")
            self.release(scaled)
            return base
        combined = self.acquire()
        self.emit(f"addiu {register_name(combined)}, "
                  f"{register_name(base.reg)}, {_fmt_off(base.off)}")
        self.emit(f"addu {register_name(combined)}, "
                  f"{register_name(combined)}, {register_name(scaled)}")
        self.release(scaled)
        return Addr(combined, 0, owned=True)

    def _scale(self, reg: int, size: int) -> int:
        """Scale an index register by an element size, in place."""
        if size == 1:
            return reg
        shift = _log2(size)
        if shift is not None:
            self.emit(f"sll {register_name(reg)}, {register_name(reg)}, "
                      f"{shift}")
            return reg
        factor = self.acquire()
        self.emit(f"li {register_name(factor)}, {size}")
        self.emit(f"mul {register_name(reg)}, {register_name(reg)}, "
                  f"{register_name(factor)}")
        self.release(factor)
        return reg

    def _load_from(self, addr: Addr, ty: Type) -> int:
        reg = self.acquire()
        load = "lb" if isinstance(ty, CharType) else "lw"
        self.emit(f"{load} {register_name(reg)}, "
                  f"{_fmt_off(addr.off)}({register_name(addr.reg)})")
        self.release_addr(addr)
        return reg

    def _materialize(self, addr: Addr) -> int:
        """Turn base+offset into a value register (for & and array decay)."""
        if addr.owned:
            if addr.off != 0:
                self.emit(f"addiu {register_name(addr.reg)}, "
                          f"{register_name(addr.reg)}, {_fmt_off(addr.off)}")
            return addr.reg
        reg = self.acquire()
        self.emit(f"addiu {register_name(reg)}, "
                  f"{register_name(addr.reg)}, {_fmt_off(addr.off)}")
        return reg

    # -- expressions ---------------------------------------------------
    def gen_expr(self, expr: ast.Expr,
                 want_value: bool = True) -> Optional[int]:
        if isinstance(expr, (ast.IntLit, ast.CharLit)):
            reg = self.acquire()
            self.emit(f"li {register_name(reg)}, {expr.value}")
            return reg
        if isinstance(expr, ast.FloatLit):
            label = self.parent.float_constant(expr.value)
            reg = self.acquire()
            self.emit(f"lw {register_name(reg)}, %gp({label})($gp)")
            return reg
        if isinstance(expr, ast.SizeOf):
            reg = self.acquire()
            self.emit(f"li {register_name(reg)}, {expr.target.size}")
            return reg
        if isinstance(expr, ast.Var):
            return self._var_value(expr)
        if isinstance(expr, ast.Binary):
            return self.gen_binary(expr)
        if isinstance(expr, ast.Unary):
            return self.gen_unary(expr)
        if isinstance(expr, ast.Deref):
            addr = self.gen_address(expr)
            return self._load_from(addr, expr.ty)
        if isinstance(expr, ast.AddressOf):
            addr = self.gen_address(expr.operand)
            return self._materialize(addr)
        if isinstance(expr, (ast.Index, ast.Member)):
            if isinstance(expr.ty, (ArrayType, StructType)):
                addr = self.gen_address(expr)
                return self._materialize(addr)
            addr = self.gen_address(expr)
            return self._load_from(addr, expr.ty)
        if isinstance(expr, ast.Call):
            return self.gen_call(expr, want_value)
        if isinstance(expr, ast.Cast):
            return self.gen_cast(expr)
        raise CodegenError(  # pragma: no cover
            f"unhandled expression {type(expr).__name__}")

    def _var_value(self, expr: ast.Var) -> int:
        symbol = expr.symbol
        ty = symbol.type
        if symbol.kind != "global":
            if expr.name in self.promoted:
                reg = self.acquire()
                self.emit(f"move {register_name(reg)}, "
                          f"{register_name(self.promoted[expr.name])}")
                return reg
            if expr.name in self.param_regs:
                reg = self.acquire()
                self.emit(f"move {register_name(reg)}, "
                          f"{register_name(self.param_regs[expr.name])}")
                return reg
        if isinstance(ty, ArrayType):
            return self._materialize(self.gen_address(expr))
        if isinstance(ty, StructType):
            raise CodegenError("struct used as a value")
        return self._load_from(self.gen_address(expr), ty)

    # -- binary operators --------------------------------------------
    _INT_OPS = {"+": "addu", "-": "subu", "*": "mul", "/": "div",
                "%": "rem", "&": "and", "|": "or", "^": "xor",
                "<<": "sllv", ">>": "srav"}
    _FLOAT_OPS = {"+": "fadd", "-": "fsub", "*": "fmul", "/": "fdiv"}

    def gen_binary(self, expr: ast.Binary) -> int:
        op = expr.op
        if op in ("&&", "||"):
            return self._short_circuit(expr)
        if op in ("==", "!=", "<", ">", "<=", ">="):
            return self._comparison(expr)
        left_ty = expr.left.ty
        right_ty = expr.right.ty
        if op in ("+", "-") and (self._is_ptr(left_ty)
                                 or self._is_ptr(right_ty)):
            return self._pointer_arith(expr)
        if op in ("<<", ">>") and not _is_float(expr.ty):
            amount = const_value(expr.right)
            if amount is not None and 0 <= int(amount) < 32:
                left = self.gen_expr(expr.left)
                mnemonic = "sll" if op == "<<" else "sra"
                self.emit(f"{mnemonic} {register_name(left)}, "
                          f"{register_name(left)}, {int(amount)}")
                return left
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        if _is_float(expr.ty):
            mnemonic = self._FLOAT_OPS[op]
        else:
            mnemonic = self._INT_OPS[op]
        if op in ("<<", ">>"):
            # Variable shifts take the amount in rs and the value in rt:
            # sllv rd, rs(amount), rt(value).
            self.emit(f"{mnemonic} {register_name(left)}, "
                      f"{register_name(right)}, {register_name(left)}")
        else:
            self.emit(f"{mnemonic} {register_name(left)}, "
                      f"{register_name(left)}, {register_name(right)}")
        self.release(right)
        return left

    @staticmethod
    def _is_ptr(ty: Optional[Type]) -> bool:
        return isinstance(ty, (PointerType, ArrayType))

    def _pointer_arith(self, expr: ast.Binary) -> int:
        left_ty, right_ty = expr.left.ty, expr.right.ty
        left_ptr, right_ptr = self._is_ptr(left_ty), self._is_ptr(right_ty)
        if left_ptr and right_ptr:                    # p - q
            target = (left_ty.elem if isinstance(left_ty, ArrayType)
                      else left_ty.target)
            left = self.gen_expr(expr.left)
            right = self.gen_expr(expr.right)
            self.emit(f"subu {register_name(left)}, {register_name(left)}, "
                      f"{register_name(right)}")
            self.release(right)
            shift = _log2(target.size)
            if shift:
                self.emit(f"sra {register_name(left)}, "
                          f"{register_name(left)}, {shift}")
            elif target.size > 1:
                divisor = self.acquire()
                self.emit(f"li {register_name(divisor)}, {target.size}")
                self.emit(f"div {register_name(left)}, "
                          f"{register_name(left)}, {register_name(divisor)}")
                self.release(divisor)
            return left
        if left_ptr:
            pointer_expr, int_expr = expr.left, expr.right
        else:
            pointer_expr, int_expr = expr.right, expr.left
        ptr_ty = pointer_expr.ty
        target = (ptr_ty.elem if isinstance(ptr_ty, ArrayType)
                  else ptr_ty.target)
        pointer = self.gen_expr(pointer_expr)
        offset = self.gen_expr(int_expr)
        offset = self._scale(offset, target.size)
        mnemonic = "subu" if expr.op == "-" else "addu"
        self.emit(f"{mnemonic} {register_name(pointer)}, "
                  f"{register_name(pointer)}, {register_name(offset)}")
        self.release(offset)
        return pointer

    def _comparison(self, expr: ast.Binary) -> int:
        left = self.gen_expr(expr.left)
        right = self.gen_expr(expr.right)
        op = expr.op
        if _is_float(expr.left.ty) or _is_float(expr.right.ty):
            result = left
            table = {
                "==": ("feq", left, right, False),
                "!=": ("feq", left, right, True),
                "<": ("flt", left, right, False),
                ">": ("flt", right, left, False),
                "<=": ("fle", left, right, False),
                ">=": ("fle", right, left, False),
            }
            mnemonic, a, b, negate = table[op]
            self.emit(f"{mnemonic} {register_name(result)}, "
                      f"{register_name(a)}, {register_name(b)}")
            if negate:
                self.emit(f"xori {register_name(result)}, "
                          f"{register_name(result)}, 1")
            self.release(right)
            return result
        if op == "<":
            self.emit(f"slt {register_name(left)}, {register_name(left)}, "
                      f"{register_name(right)}")
        elif op == ">":
            self.emit(f"slt {register_name(left)}, {register_name(right)}, "
                      f"{register_name(left)}")
        elif op == "<=":
            self.emit(f"slt {register_name(left)}, {register_name(right)}, "
                      f"{register_name(left)}")
            self.emit(f"xori {register_name(left)}, {register_name(left)}, 1")
        elif op == ">=":
            self.emit(f"slt {register_name(left)}, {register_name(left)}, "
                      f"{register_name(right)}")
            self.emit(f"xori {register_name(left)}, {register_name(left)}, 1")
        elif op == "==":
            self.emit(f"xor {register_name(left)}, {register_name(left)}, "
                      f"{register_name(right)}")
            self.emit(f"sltiu {register_name(left)}, "
                      f"{register_name(left)}, 1")
        elif op == "!=":
            self.emit(f"xor {register_name(left)}, {register_name(left)}, "
                      f"{register_name(right)}")
            self.emit(f"sltu {register_name(left)}, $zero, "
                      f"{register_name(left)}")
        self.release(right)
        return left

    def _short_circuit(self, expr: ast.Binary) -> int:
        done = self.new_label("sc_end")
        shortcut = self.new_label("sc_out")
        result = self.acquire()
        left = self.gen_expr(expr.left)
        if expr.op == "&&":
            self.emit(f"beqz {register_name(left)}, {shortcut}")
        else:
            self.emit(f"bnez {register_name(left)}, {shortcut}")
        self.release(left)
        right = self.gen_expr(expr.right)
        if expr.op == "&&":
            self.emit(f"sltu {register_name(result)}, $zero, "
                      f"{register_name(right)}")
        else:
            self.emit(f"sltu {register_name(result)}, $zero, "
                      f"{register_name(right)}")
        self.release(right)
        self.emit(f"b {done}")
        self.emit_label(shortcut)
        value = 0 if expr.op == "&&" else 1
        self.emit(f"li {register_name(result)}, {value}")
        self.emit_label(done)
        return result

    def gen_unary(self, expr: ast.Unary) -> int:
        operand = self.gen_expr(expr.operand)
        if expr.op == "-":
            if _is_float(expr.ty):
                self.emit(f"fneg {register_name(operand)}, "
                          f"{register_name(operand)}")
            else:
                self.emit(f"neg {register_name(operand)}, "
                          f"{register_name(operand)}")
        elif expr.op == "~":
            self.emit(f"not {register_name(operand)}, "
                      f"{register_name(operand)}")
        elif expr.op == "!":
            self.emit(f"sltiu {register_name(operand)}, "
                      f"{register_name(operand)}, 1")
        return operand

    def gen_cast(self, expr: ast.Cast) -> int:
        operand = self.gen_expr(expr.operand)
        source = expr.operand.ty
        target = expr.target
        if _is_float(target) and not _is_float(source):
            self.emit(f"fcvt {register_name(operand)}, "
                      f"{register_name(operand)}")
        elif not _is_float(target) and _is_float(source):
            self.emit(f"ftrunc {register_name(operand)}, "
                      f"{register_name(operand)}")
        return operand

    # -- calls ---------------------------------------------------------
    def gen_call(self, expr: ast.Call,
                 want_value: bool = True) -> Optional[int]:
        sig: FunctionSig = expr.sig
        if sig.is_builtin and expr.name in _INLINE_BUILTINS:
            return self._inline_builtin(expr, want_value)

        arg_regs: list[int] = []
        for arg in expr.args:
            arg_regs.append(self.gen_expr(arg))

        # Spill temps that must survive the call (caller-saved ABI).
        live_before = [r for r in self._live if r not in arg_regs]
        spills: list[tuple[int, int]] = []
        for position, reg in enumerate(live_before):
            offset = self.frame.spill_offset(position)
            self.emit(f"sw {register_name(reg)}, {offset}($sp)")
            spills.append((reg, offset))

        for position, reg in enumerate(arg_regs):
            self.emit(f"move {register_name(_ARGS[position])}, "
                      f"{register_name(reg)}")
        for reg in arg_regs:
            self.release(reg)
        self.emit(f"jal {expr.name}")
        for reg, offset in spills:
            self.emit(f"lw {register_name(reg)}, {offset}($sp)")
        if not want_value or sig.ret_type.is_void:
            return None
        result = self.acquire()
        self.emit(f"move {register_name(result)}, $v0")
        return result

    def _inline_builtin(self, expr: ast.Call,
                        want_value: bool) -> Optional[int]:
        name = expr.name
        if name in ("print_int", "print_char"):
            value = self.gen_expr(expr.args[0])
            self.emit(f"move $a0, {register_name(value)}")
            self.release(value)
            self.emit(f"li $v0, {1 if name == 'print_int' else 11}")
            self.emit("syscall")
            return None
        if name == "read_int":
            self.emit("li $v0, 5")
            self.emit("syscall")
            if not want_value:
                return None
            result = self.acquire()
            self.emit(f"move {register_name(result)}, $v0")
            return result
        raise CodegenError(f"unknown inline builtin {name}")


class Codegen:
    """Whole-translation-unit code generator."""

    def __init__(self, unit: ast.TranslationUnit, optimize: bool = False):
        self.unit = unit
        self.optimize = optimize
        self._float_pool: dict[int, str] = {}
        from repro.asm.symtab import SymbolTable
        self.symtab = SymbolTable()

    def float_constant(self, value: float) -> str:
        bits = float_to_bits(value)
        if bits not in self._float_pool:
            self._float_pool[bits] = f".LC{len(self._float_pool)}"
        return self._float_pool[bits]

    def generate(self) -> str:
        from repro.compiler.optimizer import fold_unit
        from repro.compiler.runtime import RUNTIME_ASM
        from repro.compiler.typeconv import to_typedesc
        if self.optimize:
            fold_unit(self.unit)

        text_lines: list[str] = [".text"]
        for func in self.unit.functions:
            if func.body is None:
                continue
            text_lines.append(f".ent {func.name}")
            text_lines.extend(FunctionCodegen(self, func).generate())
            text_lines.append(f".end {func.name}")

        data_lines: list[str] = [".data"]
        for decl in self.unit.globals:
            data_lines.extend(self._global_data(decl))
        for bits, label in self._float_pool.items():
            data_lines.append(f"{label}: .word {bits & 0xFFFFFFFF}")
        data_lines.append("__heap_ptr: .word 0")
        data_lines.append("__rand_seed: .word 12345")

        self._record_globals()
        return "\n".join([RUNTIME_ASM, *text_lines, *data_lines]) + "\n"

    def _record_globals(self) -> None:
        from repro.asm.symtab import VariableInfo
        from repro.compiler.typeconv import struct_registry, to_typedesc
        for decl in self.unit.globals:
            # gp offsets are filled by the driver after assembly/layout.
            self.symtab.add_global(VariableInfo(
                name=decl.name, type=to_typedesc(decl.type),
                region="global", offset=0))
        self.symtab.structs.update(struct_registry(self.unit))

    def _global_data(self, decl: ast.VarDecl) -> list[str]:
        lines = [".align 2"]
        ty = decl.type
        name = decl.name
        if decl.init is None:
            lines.append(f"{name}: .space {max(ty.size, 4)}")
            return lines
        init = decl.init
        if isinstance(init, ast.Call) and init.name == "__initlist__":
            assert isinstance(ty, ArrayType)
            words: list[str] = []
            self._flatten_init(ty, init, words)
            emitted = 0
            lines.append(f"{name}:")
            for word in words:
                lines.append(f"    {word}")
                emitted += 4
            remaining = ty.size - emitted
            if remaining > 0:
                lines.append(f"    .space {remaining}")
            return lines
        value = const_value(init)
        if _is_float(ty):
            lines.append(f"{name}: .float {float(value)!r}")
        else:
            lines.append(f"{name}: .word {int(value)}")
        return lines

    def _flatten_init(self, ty: Type, init: ast.Expr,
                      out: list[str]) -> None:
        if isinstance(init, ast.Call) and init.name == "__initlist__":
            assert isinstance(ty, ArrayType)
            for element in init.args:
                self._flatten_init(ty.elem, element, out)
            missing = ty.count - len(init.args)
            for _ in range(missing * max(ty.elem.size // 4, 1)):
                out.append(".word 0")
            return
        value = const_value(init)
        if _is_float(ty):
            out.append(f".word {float_to_bits(float(value))}")
        else:
            out.append(f".word {int(value) & 0xFFFFFFFF}")
