"""Conversion from MiniC types to debug-info :class:`TypeDesc` records.

Recursive struct types (``struct node { struct node *next; }``) are broken
by representing a pointer-to-struct's pointee as a named ``struct_ref``
placeholder; consumers resolve the name through
:attr:`repro.asm.symtab.SymbolTable.structs`.
"""

from __future__ import annotations

from repro.asm import symtab as st
from repro.lang import astnodes as ast
from repro.lang.types import (
    ArrayType, CharType, FloatType, IntType, PointerType, StructType, Type,
    VoidType,
)


def to_typedesc(ty: Type) -> st.TypeDesc:
    if isinstance(ty, IntType):
        return st.INT
    if isinstance(ty, FloatType):
        return st.FLOAT
    if isinstance(ty, CharType):
        return st.CHAR
    if isinstance(ty, VoidType):
        return st.TypeDesc("int", 0)
    if isinstance(ty, PointerType):
        target = ty.target
        if isinstance(target, StructType):
            elem = st.TypeDesc("struct_ref", 0, struct_name=target.name)
        else:
            elem = to_typedesc(target)
        return st.TypeDesc("pointer", 4, elem=elem)
    if isinstance(ty, ArrayType):
        return st.TypeDesc("array", ty.size, elem=to_typedesc(ty.elem),
                           count=ty.count)
    if isinstance(ty, StructType):
        fields = tuple(
            st.FieldDesc(fld.name, fld.offset, to_typedesc(fld.type))
            for fld in ty.fields.values()
        )
        return st.TypeDesc("struct", ty.size, fields=fields,
                           struct_name=ty.name)
    raise TypeError(f"cannot convert {ty!r}")


def struct_registry(unit: ast.TranslationUnit) -> dict[str, st.TypeDesc]:
    """Name -> TypeDesc for every struct declared in the unit."""
    registry: dict[str, st.TypeDesc] = {}
    for decl in unit.structs:
        struct_ty = StructType(decl.name)
        struct_ty.set_fields(decl.members)
        registry[decl.name] = to_typedesc(struct_ty)
    return registry
