"""Runtime library, written in the target assembly.

The paper's analysis runs over "the assembly code for the benchmark as well
as any library functions", so the allocator and PRNG are real assembly
routines the static analyzer sees, not simulator magic:

* ``__start`` — program entry: calls ``main`` then exits with its result;
* ``malloc`` — bump allocator over ``__heap_ptr`` (a gp-relative global;
  the driver patches its initial value to the heap base after layout);
* ``calloc`` — ``malloc`` plus a zeroing loop;
* ``free`` — no-op (bump allocator never reuses memory);
* ``rand`` / ``srand`` — 31-bit LCG over the ``__rand_seed`` global.

``malloc`` returning through ``$v0`` is what makes heap pointers trace back
to the paper's ``reg_ret`` base register during address-pattern expansion.
"""

RUNTIME_ASM = r"""
.text
.ent __start
__start:
    jal main
    move $a0, $v0
    li $v0, 10
    syscall
.end __start

.ent malloc
malloc:
    addiu $a0, $a0, 7          # round request up to 8 bytes
    srl $a0, $a0, 3
    sll $a0, $a0, 3
    lw $v0, %gp(__heap_ptr)($gp)
    addu $t0, $v0, $a0
    sw $t0, %gp(__heap_ptr)($gp)
    jr $ra
.end malloc

.ent calloc
calloc:
    mul $a0, $a0, $a1          # total bytes
    addiu $sp, $sp, -8
    sw $ra, 4($sp)
    sw $a0, 0($sp)
    jal malloc
    lw $t1, 0($sp)             # byte count
    lw $ra, 4($sp)
    addiu $sp, $sp, 8
    move $t0, $v0
    addu $t1, $v0, $t1         # end pointer
.L_calloc_zero:
    bge $t0, $t1, .L_calloc_done
    sw $zero, 0($t0)
    addiu $t0, $t0, 4
    b .L_calloc_zero
.L_calloc_done:
    jr $ra
.end calloc

.ent free
free:
    jr $ra                     # bump allocator: free is a no-op
.end free

.ent rand
rand:
    lw $t0, %gp(__rand_seed)($gp)
    lui $t1, 16838             # 1103515245 == 0x41c64e6d
    ori $t1, $t1, 20077
    mul $t0, $t0, $t1
    addiu $t0, $t0, 12345
    sw $t0, %gp(__rand_seed)($gp)
    srl $v0, $t0, 16
    andi $v0, $v0, 32767
    jr $ra
.end rand

.ent srand
srand:
    sw $a0, %gp(__rand_seed)($gp)
    jr $ra
.end srand
"""
