"""Table 2: runtime characteristics of the benchmarks.

Instructions executed, L1 data-cache accesses and total L1 data-cache
misses under the training cache configuration.
"""

from __future__ import annotations

from repro.cache.config import TRAINING_CONFIG
from repro.experiments.common import ALL_NAMES, Table
from repro.experiments.grid import TableSpec
from repro.pipeline.session import Session

SPEC = TableSpec(number=2, names=ALL_NAMES, configs=(TRAINING_CONFIG,))


def _sci(value: int) -> str:
    return f"{value:.2e}"


def run(session: Session, names: tuple[str, ...] = ALL_NAMES) -> Table:
    table = Table(
        exhibit="Table 2",
        title="Typical runtime characteristics of the benchmarks",
        headers=["Benchmark", "Instr executed", "L1 D-cache accesses",
                 "L1 D-cache misses"],
        notes=["misses counts load misses + store misses under the "
               f"training cache ({TRAINING_CONFIG.describe()})"],
    )
    for name in names:
        stats = session.stats(name, cache_config=TRAINING_CONFIG)
        m = session.measurement(name, cache_config=TRAINING_CONFIG)
        misses = stats.total_load_misses + stats.total_store_misses
        table.add_row(name, _sci(m.steps), _sci(stats.total_accesses),
                      _sci(misses))
    return table
