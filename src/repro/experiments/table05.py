"""Table 5: aggregate classes and their weights.

Shows the paper's published weights next to the weights retrained on our
synthetic suite with the Section 7 formulas.  The default classifier uses
the paper's weights; the retrained column demonstrates the full training
pipeline is operational.
"""

from __future__ import annotations

from repro.cache.config import TRAINING_CONFIG
from repro.experiments.common import TRAINING_NAMES, Table
from repro.experiments.grid import TableSpec
from repro.experiments.table03 import collect_training_set
from repro.heuristic.classes import AGGREGATE_CLASSES, PAPER_WEIGHTS
from repro.heuristic.training import TrainingReport, train_weights
from repro.pipeline.session import Session

SPEC = TableSpec(number=5, names=TRAINING_NAMES,
                 configs=(TRAINING_CONFIG,))


def retrain(session: Session,
            names: tuple[str, ...] = TRAINING_NAMES) -> TrainingReport:
    return train_weights(collect_training_set(session, names))


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES) -> Table:
    report = retrain(session, names)
    table = Table(
        exhibit="Table 5",
        title="Aggregate classes and their weights",
        headers=["Class", "Feature", "Paper weight", "Retrained weight",
                 "Nature"],
    )
    for cls in AGGREGATE_CLASSES:
        evaluation = report.evaluations.get(cls.name)
        nature = evaluation.nature if evaluation else "negative (fixed)"
        table.add_row(cls.name, cls.feature,
                      f"{PAPER_WEIGHTS[cls.name]:+.2f}",
                      f"{report.weights[cls.name]:+.2f}",
                      nature)
    return table
