"""Table 1: use of basic-block profiling in identifying delinquent loads.

For each benchmark: |Lambda|, the ideal number of loads needed to reach the
profiling coverage (greedy by miss count), the profiling set Delta_P (all
loads in the 90%-of-cycles blocks) and its coverage rho.
"""

from __future__ import annotations

from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.grid import TableSpec
from repro.metrics.measures import coverage, ideal_delta
from repro.pipeline.session import Session

SPEC = TableSpec(number=1, names=ALL_NAMES)


def run(session: Session, names: tuple[str, ...] = ALL_NAMES) -> Table:
    table = Table(
        exhibit="Table 1",
        title="Use of profiling in identifying delinquent loads",
        headers=["Benchmark", "|Lambda|", "Ideal |D|(pi)",
                 "Profiling |D|(pi)", "rho"],
    )
    ideal_pis: list[float] = []
    prof_pis: list[float] = []
    rhos: list[float] = []
    for name in names:
        m = session.measurement(name)
        delta_p = m.profile.hotspot_loads()
        rho = coverage(delta_p, m.load_misses)
        ideal = ideal_delta(m.load_misses, rho)
        n = m.num_loads
        ideal_pi = len(ideal) / n if n else 0.0
        prof_pi = len(delta_p) / n if n else 0.0
        ideal_pis.append(ideal_pi)
        prof_pis.append(prof_pi)
        rhos.append(rho)
        table.add_row(name, n, f"{len(ideal)} ({pct(ideal_pi, 2)})",
                      f"{len(delta_p)} ({pct(prof_pi, 2)})", pct(rho))
    table.add_row("AVERAGE", "", pct(mean(ideal_pis), 2),
                  pct(mean(prof_pis), 2), pct(mean(rhos), 1))
    return table
