"""Table 4: m_j and n_j values of the 'sp=1,gp=1' H1 class.

The paper's worked example for weight derivation (its class 5).  We print
m/n for every training benchmark where the class occurs, plus the weight
the W(F) formula would assign.
"""

from __future__ import annotations

from repro.cache.config import TRAINING_CONFIG
from repro.experiments.common import TRAINING_NAMES, Table
from repro.experiments.grid import TableSpec
from repro.experiments.table03 import collect_training_set
from repro.heuristic.training import evaluate_class
from repro.pipeline.session import Session

CLASS_NAME = "H1:sp=1,gp=1"

SPEC = TableSpec(number=4, names=TRAINING_NAMES,
                 configs=(TRAINING_CONFIG,))


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES,
        class_name: str = CLASS_NAME) -> Table:
    data = collect_training_set(session, names)
    evaluation = evaluate_class(class_name, data)
    table = Table(
        exhibit="Table 4",
        title=f"m_j and n_j values of class '{class_name}'",
        headers=["Benchmark", "m_j (%)", "n_j (%)", "relevant"],
    )
    for bench, (m, n) in sorted(evaluation.per_benchmark.items()):
        table.add_row(bench, f"{100 * m:.2f}", f"{100 * n:.2f}",
                      "yes" if bench in evaluation.relevant_in else "no")
    table.notes.append(
        f"nature={evaluation.nature}, W={evaluation.weight:.2f} "
        f"(mean of m/n over relevant benchmarks)")
    return table
