"""Table 14: combining the heuristic with basic-block profiling.

The Section 9 combined scheme at epsilon = 0, 0.1, 0.2, 0.3, plus the
rho* random-sampling control at epsilon = 0 (mean of three runs).
"""

from __future__ import annotations

from repro.cache.config import BASELINE_CONFIG
from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.evalutil import run_heuristic
from repro.metrics.measures import coverage, precision
from repro.pipeline.session import Session
from repro.experiments.grid import TableSpec
from repro.profiling.combined import combined_delta, \
    random_hotspot_coverage

EPSILONS = (0.0, 0.10, 0.20, 0.30)

SPEC = TableSpec(number=14, names=ALL_NAMES)


def run(session: Session,
        names: tuple[str, ...] = ALL_NAMES,
        epsilons: tuple[float, ...] = EPSILONS) -> Table:
    headers = ["Benchmark", "eps=0 pi", "eps=0 rho", "rho*"]
    for eps in epsilons[1:]:
        headers.extend([f"eps={eps:.1f} pi", f"eps={eps:.1f} rho"])
    table = Table(
        exhibit="Table 14",
        title="Varying the epsilon factor of the combined scheme",
        headers=headers,
    )
    n_cols = 3 + 2 * (len(epsilons) - 1)
    columns: list[list[float]] = [[] for _ in range(n_cols)]
    for name in names:
        m = session.measurement(name, cache_config=BASELINE_CONFIG)
        heuristic = run_heuristic(m)
        delta_p = m.profile.hotspot_loads()
        values: list[float] = []
        for position, eps in enumerate(epsilons):
            combined = combined_delta(delta_p, heuristic, eps)
            values.append(precision(combined, m.num_loads))
            values.append(coverage(combined, m.load_misses))
            if position == 0:
                size = len(combined)
                values.append(random_hotspot_coverage(
                    delta_p, size, m.load_misses))
        for column, value in zip(columns, values):
            column.append(value)
        # Digits: pi columns get 2 decimals, rho columns none.
        digit_plan = [2, 0, 0] + [2, 0] * (len(epsilons) - 1)
        table.add_row(name, *[pct(v, d)
                              for v, d in zip(values, digit_plan)])
    table.add_row("AVERAGE", *[pct(mean(c), 2) for c in columns])
    return table
