"""Experiment runner: regenerate any or all paper tables.

``python -m repro.experiments --tables 7,11 --scale 0.5`` prints the
requested tables; ``--report PATH`` additionally writes an
EXPERIMENTS.md-style paper-vs-measured report.
"""

from __future__ import annotations

import argparse
import sys
import time
from typing import Callable, Optional

from repro.experiments import (
    table01, table02, table03, table04, table05, table06, table07,
    table08, table09, table10, table11, table12, table13, table14,
    table15, table16, table17,
)
from repro.experiments.common import Table
from repro.pipeline.session import Session

#: Table number -> module.  Every module exposes ``run`` (the
#: formatter) and ``SPEC`` (its declarative grid cells).
TABLE_MODULES = {
    1: table01, 2: table02, 3: table03, 4: table04, 5: table05,
    6: table06, 7: table07, 8: table08, 9: table09, 10: table10,
    11: table11, 12: table12, 13: table13, 14: table14, 15: table15,
    16: table16, 17: table17,
}

EXPERIMENTS: dict[int, Callable[[Session], Table]] = {
    number: module.run for number, module in TABLE_MODULES.items()
}


def run_tables(session: Session,
               numbers: Optional[list[int]] = None,
               echo: bool = True) -> dict[int, Table]:
    """Run the requested experiments (all by default)."""
    numbers = numbers or sorted(EXPERIMENTS)
    results: dict[int, Table] = {}
    for number in numbers:
        started = time.time()
        table = EXPERIMENTS[number](session)
        results[number] = table
        if echo:
            print(table.render())
            print(f"  [{time.time() - started:.1f}s]\n")
    return results


def main(argv: Optional[list[str]] = None) -> int:
    parser = argparse.ArgumentParser(
        description="Regenerate the paper's tables on the synthetic "
                    "workload suite.")
    parser.add_argument("--tables", default="all",
                        help="comma-separated table numbers, or 'all'")
    parser.add_argument("--scale", type=float, default=1.0,
                        help="workload size multiplier (default 1.0)")
    parser.add_argument("--no-disk-cache", action="store_true",
                        help="disable the on-disk result cache")
    parser.add_argument("--report", default=None,
                        help="also write a paper-vs-measured markdown "
                             "report to this path")
    args = parser.parse_args(argv)

    if args.tables == "all":
        numbers = sorted(EXPERIMENTS)
    else:
        numbers = [int(x) for x in args.tables.split(",")]
    unknown = [n for n in numbers if n not in EXPERIMENTS]
    if unknown:
        parser.error(f"unknown tables: {unknown}")

    session = Session(scale=args.scale,
                      use_disk_cache=not args.no_disk_cache)
    results = run_tables(session, numbers)
    if args.report:
        from repro.experiments.report import write_report
        write_report(results, args.report, scale=args.scale)
        print(f"report written to {args.report}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
