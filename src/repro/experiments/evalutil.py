"""Evaluation helpers shared by the table experiments."""

from __future__ import annotations

from repro.heuristic.classes import PAPER_WEIGHTS, Weights
from repro.heuristic.classifier import DelinquencyClassifier, \
    HeuristicResult
from repro.metrics.measures import coverage, precision
from repro.pipeline.session import Measurement


def run_heuristic(measurement: Measurement,
                  weights: Weights = PAPER_WEIGHTS,
                  delta: float = 0.10,
                  use_frequency: bool = True) -> HeuristicResult:
    classifier = DelinquencyClassifier(weights=weights, delta=delta,
                                       use_frequency=use_frequency)
    hotspots = measurement.profile.hotspot_loads() if use_frequency \
        else None
    return classifier.classify(measurement.load_infos,
                               measurement.load_exec,
                               hotspots)


def pi_rho(delta_set: set[int],
           measurement: Measurement) -> tuple[float, float]:
    return (precision(delta_set, measurement.num_loads),
            coverage(delta_set, measurement.load_misses))
