"""Table 7: heuristic performance on two different input sets.

pi/rho for the eleven training benchmarks, unoptimized code, the training
cache configuration, on Input 1 (the training input) and Input 2.  The
paper's claim: the heuristic is insensitive to inputs.
"""

from __future__ import annotations

from repro.cache.config import TRAINING_CONFIG
from repro.experiments.common import TRAINING_NAMES, Table, mean, pct
from repro.experiments.evalutil import pi_rho, run_heuristic
from repro.experiments.grid import TableSpec
from repro.pipeline.session import Session

SPEC = TableSpec(number=7, names=TRAINING_NAMES,
                 input_names=("input1", "input2"),
                 configs=(TRAINING_CONFIG,))


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES) -> Table:
    table = Table(
        exhibit="Table 7",
        title="Performance on different inputs (pi / rho)",
        headers=["Benchmark", "Input 1", "Input 2"],
    )
    sums = {"input1": [[], []], "input2": [[], []]}
    for name in names:
        cells = []
        for input_name in ("input1", "input2"):
            m = session.measurement(name, input_name=input_name,
                                    cache_config=TRAINING_CONFIG)
            result = run_heuristic(m)
            pi, rho = pi_rho(result.delinquent_set, m)
            sums[input_name][0].append(pi)
            sums[input_name][1].append(rho)
            cells.append(f"{pct(pi)} / {pct(rho)}")
        table.add_row(name, *cells)
    table.add_row(
        "AVERAGE",
        f"{pct(mean(sums['input1'][0]))} / {pct(mean(sums['input1'][1]))}",
        f"{pct(mean(sums['input2'][0]))} / {pct(mean(sums['input2'][1]))}",
    )
    return table
