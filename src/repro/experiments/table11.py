"""Table 11: full performance summary of the heuristic.

All eighteen benchmarks, baseline cache, unoptimized code: pi, rho and the
dynamic false-positive measure xi with the frequency classes AG8/AG9, and
pi/rho without them (the configuration needing no runtime profile).
"""

from __future__ import annotations

from repro.cache.config import BASELINE_CONFIG
from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.evalutil import pi_rho, run_heuristic
from repro.experiments.grid import TableSpec
from repro.metrics.measures import coverage, ideal_delta, xi
from repro.pipeline.session import Session

SPEC = TableSpec(number=11, names=ALL_NAMES)


def run(session: Session,
        names: tuple[str, ...] = ALL_NAMES) -> Table:
    table = Table(
        exhibit="Table 11",
        title="Performance summary of the heuristic method",
        headers=["Benchmark", "pi", "rho", "xi",
                 "pi (no AG8/9)", "rho (no AG8/9)"],
    )
    columns: list[list[float]] = [[] for _ in range(5)]
    for name in names:
        m = session.measurement(name, cache_config=BASELINE_CONFIG)
        with_freq = run_heuristic(m, use_frequency=True)
        without_freq = run_heuristic(m, use_frequency=False)
        pi1, rho1 = pi_rho(with_freq.delinquent_set, m)
        pi2, rho2 = pi_rho(without_freq.delinquent_set, m)
        # xi uses the ideal set at the profiling coverage (Table 1).
        profiling_rho = coverage(m.profile.hotspot_loads(),
                                 m.load_misses)
        ideal = ideal_delta(m.load_misses, profiling_rho)
        xi_value = xi(with_freq.delinquent_set, ideal, m.load_exec)
        for column, value in zip(columns,
                                 (pi1, rho1, xi_value, pi2, rho2)):
            column.append(value)
        table.add_row(name, pct(pi1, 2), pct(rho1), pct(xi_value),
                      pct(pi2, 2), pct(rho2))
    table.add_row("AVERAGE", pct(mean(columns[0]), 2),
                  pct(mean(columns[1]), 2), pct(mean(columns[2]), 2),
                  pct(mean(columns[3]), 2), pct(mean(columns[4]), 2))
    return table
