"""Canonical experiment grid: one source of truth for every table's cells.

Each table module declares ``SPEC = TableSpec(...)`` — the exact
workload × input × optimize × cache-geometry grid its formatter reads —
instead of hard-coding the combinations in its ``run`` body.  The
campaign engine (:mod:`repro.campaign`), the warm-up plan
(:func:`repro.pipeline.session.standard_warm_plan`) and the serial
runner all consume the same specs, so there is exactly one place where
"what does Table N need?" is answered.

A :class:`GridCell` is the unit of work: one ``(workload, input,
optimize)`` run plus the set of cache geometries simulated over its
trace (one trace replay covers all of them) and an optional analytic-
profile requirement.  :func:`merge_cells` unions overlapping cells so
shared artifacts are computed once across tables.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Sequence

from repro.cache.config import (BASELINE_CONFIG, TRAINING_CONFIG,
                                CacheConfig, associativity_sweep,
                                size_sweep)
from repro.experiments.common import ALL_NAMES, TEST_NAMES, \
    TRAINING_NAMES

#: Table 13's geometry; equal to ``size_sweep()[1]``, so it dedups into
#: the sweep union below.
CACHE_16K = CacheConfig(size=16 * 1024, assoc=4, block_size=32)


def sweep_configs() -> tuple[CacheConfig, ...]:
    """Union of the Table 8/9 geometry sweeps (includes CACHE_16K)."""
    return tuple(dict.fromkeys(associativity_sweep() + size_sweep()))


@dataclass(frozen=True)
class GridCell:
    """One pipeline run and the cache geometries simulated over it."""

    workload: str
    input_name: str = "input1"
    optimize: bool = False
    configs: tuple[CacheConfig, ...] = (BASELINE_CONFIG,)
    analytic: bool = False      # table also reads the analytic profile

    @property
    def run_key(self) -> tuple[str, str, bool]:
        return (self.workload, self.input_name, self.optimize)


@dataclass(frozen=True)
class TableSpec:
    """Declarative description of the grid one table consumes.

    ``names`` × ``input_names`` expands to the run set; every run is
    simulated under ``configs``.  Tables whose formatter only reads
    static metadata (Table 6) use an empty ``names``.
    """

    number: int
    names: tuple[str, ...] = ()
    input_names: tuple[str, ...] = ("input1",)
    optimize: bool = False
    configs: tuple[CacheConfig, ...] = (BASELINE_CONFIG,)
    analytic: bool = False

    def cells(self) -> list[GridCell]:
        return [
            GridCell(workload=name, input_name=input_name,
                     optimize=self.optimize, configs=self.configs,
                     analytic=self.analytic)
            for name in self.names
            for input_name in self.input_names
        ]


def table_specs() -> dict[int, TableSpec]:
    """``SPEC`` of every table module, keyed by table number.

    Imported lazily: the table modules import this module for
    :class:`TableSpec`, so a module-level import here would cycle.
    """
    from repro.experiments import runner
    specs: dict[int, TableSpec] = {}
    for number, module in sorted(runner.TABLE_MODULES.items()):
        specs[number] = module.SPEC
    return specs


def merge_cells(cells: Iterable[GridCell]) -> list[GridCell]:
    """Union cells sharing a run key (first-seen order preserved).

    Configs merge first-seen and dedup by equality; the analytic flag
    ORs.  The result is the minimal set of trace replays covering every
    input cell.
    """
    merged: dict[tuple[str, str, bool], GridCell] = {}
    for cell in cells:
        prior = merged.get(cell.run_key)
        if prior is None:
            merged[cell.run_key] = cell
            continue
        configs = tuple(dict.fromkeys(prior.configs + cell.configs))
        merged[cell.run_key] = GridCell(
            workload=cell.workload, input_name=cell.input_name,
            optimize=cell.optimize, configs=configs,
            analytic=prior.analytic or cell.analytic)
    return list(merged.values())


def campaign_cells(numbers: Sequence[int] | None = None
                   ) -> list[GridCell]:
    """Merged cell set for the requested tables (all by default)."""
    specs = table_specs()
    numbers = sorted(specs) if numbers is None else sorted(numbers)
    cells: list[GridCell] = []
    for number in numbers:
        cells.extend(specs[number].cells())
    return merge_cells(cells)


def warm_plan() -> list[tuple[str, str, bool, tuple[CacheConfig, ...]]]:
    """The full-suite warm plan, derived from the table specs.

    Reproduces the historical hand-written plan exactly: eighteen
    workloads at the baseline+training caches, the training set on its
    second input, and the training set optimized under the geometry
    sweep union — 40 entries.
    """
    return [(cell.workload, cell.input_name, cell.optimize,
             cell.configs)
            for cell in campaign_cells()]
