"""Table 10: performance on benchmarks not used for training.

The litmus test: pi/rho on the seven held-out workloads, unoptimized,
training cache configuration.
"""

from __future__ import annotations

from repro.cache.config import TRAINING_CONFIG
from repro.experiments.common import TEST_NAMES, Table, mean, pct
from repro.experiments.evalutil import pi_rho, run_heuristic
from repro.experiments.grid import TableSpec
from repro.pipeline.session import Session

SPEC = TableSpec(number=10, names=TEST_NAMES,
                 configs=(TRAINING_CONFIG,))


def run(session: Session,
        names: tuple[str, ...] = TEST_NAMES) -> Table:
    table = Table(
        exhibit="Table 10",
        title="Performance of the heuristic on a new set of benchmarks",
        headers=["Benchmark", "|D| / |Lambda| (pi)", "rho"],
    )
    pis: list[float] = []
    rhos: list[float] = []
    for name in names:
        m = session.measurement(name, cache_config=TRAINING_CONFIG)
        result = run_heuristic(m)
        pi, rho = pi_rho(result.delinquent_set, m)
        pis.append(pi)
        rhos.append(rho)
        table.add_row(
            name,
            f"{len(result.delinquent_set)} / {m.num_loads} "
            f"({pct(pi, 2)})",
            pct(rho))
    table.add_row("AVERAGE", pct(mean(pis), 2), pct(mean(rhos), 2))
    return table
