"""Table 16 (beyond the paper): dTLB behaviour of delinquent loads.

The paper identifies delinquent loads against a data *cache*; this
exhibit asks how the same loads behave against the data *TLB*.  Each
workload is replayed at page granularity through the shared sweep
engine (:mod:`repro.tlb`) for a micro geometry sized to the suite's
footprints, and every static load is scored by the PCAX predictor —
PC-indexed data-address translation, which deems a load "friendly"
when its next page is a fixed stride from its last one.  The cross-tab
against the heuristic's delinquent set separates loads whose cache
misses come with hard-to-predict translations (both) from delinquent
loads whose pages a PCAX-style prefetcher would cover (delinquent
only).

Per workload: the dTLB miss rate at the micro and a 4x-reach geometry,
the fraction of loads PCAX finds friendly, and the two interesting
cross-tab cells.  The notes aggregate the full cross-tab over the
suite.
"""

from __future__ import annotations

from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.evalutil import run_heuristic
from repro.experiments.grid import TableSpec
from repro.pipeline.session import Session
from repro.tlb import TlbConfig

SPEC = TableSpec(number=16, names=ALL_NAMES)

#: Geometries sized to the scaled suite (reach 2KB and 8KB): large
#: enough that streaming code fits, small enough that strided and
#: pointer-chasing code actually misses.
MICRO_TLB = TlbConfig(page_size=256, entries=8)
LARGE_TLB = TlbConfig(page_size=1024, entries=8)

#: PCAX page size matches the micro geometry, so "friendly" means
#: predictable at exactly the granularity the micro TLB translates.
PCAX_PAGE_SIZE = MICRO_TLB.page_size


def run(session: Session,
        names: tuple[str, ...] = ALL_NAMES) -> Table:
    table = Table(
        exhibit="Table 16",
        title="dTLB miss rates and PCAX translation predictability "
              "of delinquent loads (beyond the paper)",
        headers=["Benchmark", f"miss {MICRO_TLB.describe()}",
                 f"miss {LARGE_TLB.describe()}", "PCAX-friendly",
                 "delq+friendly", "delq only"],
    )
    micro_rates: list[float] = []
    large_rates: list[float] = []
    friendly_fracs: list[float] = []
    totals = {"both": 0, "delinquent_only": 0, "friendly_only": 0,
              "neither": 0}
    from repro.tlb import pcax_crosstab
    for name in names:
        micro, large = session.tlb_stats(
            name, configs=(MICRO_TLB, LARGE_TLB))
        profile = session.pcax(name, page_size=PCAX_PAGE_SIZE)
        m = session.measurement(name)
        delinquent = run_heuristic(m).delinquent_set
        friendly = profile.friendly_set()
        universe = set(profile.loads)
        cross = pcax_crosstab(friendly, delinquent, universe)
        for cell, count in cross.items():
            totals[cell] += count
        friendly_frac = len(friendly) / max(len(universe), 1)
        micro_rates.append(micro.miss_rate)
        large_rates.append(large.miss_rate)
        friendly_fracs.append(friendly_frac)
        table.add_row(name, pct(micro.miss_rate, 2),
                      pct(large.miss_rate, 2), pct(friendly_frac, 1),
                      cross["both"], cross["delinquent_only"])
    table.add_row("AVERAGE", pct(mean(micro_rates), 2),
                  pct(mean(large_rates), 2),
                  pct(mean(friendly_fracs), 1), "", "")
    flagged = totals["both"] + totals["delinquent_only"]
    if flagged:
        share = totals["both"] / flagged
        table.notes.append(
            f"suite cross-tab: {totals['both']} delinquent loads are "
            f"PCAX-friendly, {totals['delinquent_only']} are not "
            f"({pct(share, 0)} of delinquent loads have predictable "
            f"translations); {totals['friendly_only']} friendly-only, "
            f"{totals['neither']} neither")
    table.notes.append(
        f"PCAX evaluated at {PCAX_PAGE_SIZE}B pages (the micro "
        f"geometry's); friendly = >=90% of a load's page translations "
        f"follow its per-PC stride")
    return table
