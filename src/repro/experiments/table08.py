"""Table 8: heuristic stability across cache associativities.

Optimized code, 8KB data cache, associativity 2/4/8.  pi is input- and
code-dependent only, so it is constant across the sweep; rho is measured
per configuration.
"""

from __future__ import annotations

from repro.cache.config import associativity_sweep
from repro.experiments.common import TRAINING_NAMES, Table, mean, pct
from repro.experiments.evalutil import run_heuristic
from repro.experiments.grid import TableSpec
from repro.metrics.measures import coverage, precision
from repro.pipeline.session import Session

SPEC = TableSpec(number=8, names=TRAINING_NAMES, optimize=True,
                 configs=tuple(associativity_sweep()))


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES,
        optimize: bool = True) -> Table:
    configs = associativity_sweep()
    table = Table(
        exhibit="Table 8",
        title="Performance under different cache associativities "
              "(optimized code)",
        headers=["Benchmark", "pi"] + [f"assoc {c.assoc} rho"
                                       for c in configs],
    )
    pis: list[float] = []
    rho_cols: list[list[float]] = [[] for _ in configs]
    for name in names:
        row: list[str] = [name]
        delta_set = None
        # one sweep-engine pass covers the whole associativity grid
        session.stats_multi(name, optimize=optimize,
                            configs=tuple(configs))
        for position, config in enumerate(configs):
            m = session.measurement(name, optimize=optimize,
                                    cache_config=config)
            if delta_set is None:
                result = run_heuristic(m)
                delta_set = result.delinquent_set
                pi = precision(delta_set, m.num_loads)
                pis.append(pi)
                row.append(pct(pi))
            rho = coverage(delta_set, m.load_misses)
            rho_cols[position].append(rho)
            row.append(pct(rho))
        table.rows.append(row)
    table.add_row("AVERAGE", pct(mean(pis)),
                  *[pct(mean(col)) for col in rho_cols])
    return table
