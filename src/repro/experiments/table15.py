"""Table 15 (beyond the paper): analytic prediction vs. measurement.

The paper measures misses by running the benchmarks; the analytic
engine (:mod:`repro.analytic`) predicts them from static analysis
alone.  This exhibit quantifies the gap on the full suite at the
baseline cache with the fallback *disabled* — i.e. what the engine
would answer if it were not allowed to confess — and is the
quantitative case for the coverage gate: the error concentrates
exactly where coverage collapses (pointer-chasing AG4-6 code
underpredicts, cold AG8/9 straight-line code the static layers must
guess at overpredicts), while the workload with the highest coverage
tracks within a point.  ``Session.predict_stats`` would serve every
below-threshold row from the measured sweep instead.

Per workload: the measured load miss rate, the predicted one (forced
analytic, no fallback), the absolute error in percentage points, and
the profile's access-weighted HIGH-confidence coverage.  The notes
aggregate measured vs. predicted misses per AG class across the whole
suite.
"""

from __future__ import annotations

from repro.cache.config import BASELINE_CONFIG
from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.grid import TableSpec
from repro.heuristic.classes import (AGGREGATE_CLASSES,
                                     frequency_category)
from repro.pipeline.session import Session

SPEC = TableSpec(number=15, names=ALL_NAMES, analytic=True)


def _class_members(measurement, class_totals, pred_misses):
    """Attribute each load's measured/predicted misses to its classes."""
    for pc, info in measurement.load_infos.items():
        measured = measurement.load_misses.get(pc, 0)
        predicted = pred_misses.get(pc, 0)
        if not measured and not predicted:
            continue
        exec_count = measurement.load_exec.get(pc, 0)
        category = frequency_category(exec_count)
        for cls in AGGREGATE_CLASSES:
            member = (any(cls.matches_pattern(f) for f in info.features)
                      if cls.pattern_member is not None
                      else cls.matches_frequency(category))
            if member:
                meas_total, pred_total = class_totals[cls.name]
                class_totals[cls.name] = (meas_total + measured,
                                          pred_total + predicted)


def run(session: Session,
        names: tuple[str, ...] = ALL_NAMES) -> Table:
    table = Table(
        exhibit="Table 15",
        title="Analytic (trace-free) prediction vs. measured misses "
              "(baseline cache; beyond the paper)",
        headers=["Benchmark", "measured miss", "predicted miss",
                 "|err| pp", "coverage"],
    )
    meas_rates: list[float] = []
    pred_rates: list[float] = []
    errors: list[float] = []
    coverages: list[float] = []
    class_totals = {cls.name: (0, 0) for cls in AGGREGATE_CLASSES}
    for name in names:
        m = session.measurement(name)
        stats = session.stats(name)
        profile = session.analytic_profile(
            name, block_size=BASELINE_CONFIG.block_size)
        predicted = profile.evaluate(BASELINE_CONFIG)

        meas_acc = sum(stats.load_accesses.values())
        meas_rate = sum(stats.load_misses.values()) / max(meas_acc, 1)
        pred_acc = sum(predicted.load_accesses.values())
        pred_rate = (sum(predicted.load_misses.values())
                     / max(pred_acc, 1))
        error = abs(pred_rate - meas_rate)
        meas_rates.append(meas_rate)
        pred_rates.append(pred_rate)
        errors.append(error)
        coverages.append(profile.coverage)
        _class_members(m, class_totals, dict(predicted.load_misses))
        table.add_row(name, pct(meas_rate, 2), pct(pred_rate, 2),
                      f"{100.0 * error:.2f}", pct(profile.coverage, 1))
    table.add_row("AVERAGE", pct(mean(meas_rates), 2),
                  pct(mean(pred_rates), 2),
                  f"{100.0 * mean(errors):.2f}",
                  pct(mean(coverages), 1))
    for cls in AGGREGATE_CLASSES:
        meas_total, pred_total = class_totals[cls.name]
        if meas_total == 0 and pred_total == 0:
            continue
        rel = (abs(pred_total - meas_total)
               / max(meas_total, 1))
        table.notes.append(
            f"{cls.name} ({cls.feature}): measured {meas_total:,} "
            f"vs predicted {pred_total:,} misses "
            f"(rel err {100.0 * rel:.0f}%)")
    return table
