"""Table 3: criterion H1 applied to the eleven training benchmarks.

For every fine H1 class (exact sp/gp occurrence counts): how many training
benchmarks contain such patterns, and in how many the class is relevant.
"""

from __future__ import annotations

from repro.cache.config import TRAINING_CONFIG
from repro.experiments.common import TRAINING_NAMES, Table
from repro.experiments.grid import TableSpec
from repro.heuristic.training import BenchmarkTrainingData, \
    evaluate_h1_classes
from repro.pipeline.session import Session

SPEC = TableSpec(number=3, names=TRAINING_NAMES,
                 configs=(TRAINING_CONFIG,))


def collect_training_set(session: Session,
                         names: tuple[str, ...] = TRAINING_NAMES
                         ) -> list[BenchmarkTrainingData]:
    """Profiled training data for the weight-derivation experiments."""
    out: list[BenchmarkTrainingData] = []
    for name in names:
        m = session.measurement(name, cache_config=TRAINING_CONFIG)
        out.append(BenchmarkTrainingData.collect(
            name=name,
            load_infos=m.load_infos,
            exec_counts=m.load_exec,
            load_misses=m.load_misses,
            hotspot_loads=m.profile.hotspot_loads(),
        ))
    return out


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES) -> Table:
    data = collect_training_set(session, names)
    table = Table(
        exhibit="Table 3",
        title="Criterion H1 applied to the eleven training benchmarks",
        headers=["Class", "Feature", "Found in", "Relevant in"],
    )
    for evaluation in evaluate_h1_classes(data):
        feature = evaluation.name.removeprefix("H1:")
        table.add_row(evaluation.name, feature,
                      f"{len(evaluation.found_in)} benchmarks",
                      f"{len(evaluation.relevant_in)} benchmarks")
    return table
