"""Table 12: performance of the OKN and BDH baselines.

Same binaries and cache configuration as Table 11; both baselines reach
comparable coverage only by flagging a far larger share of loads.
"""

from __future__ import annotations

from repro.baselines import bdh, okn
from repro.cache.config import BASELINE_CONFIG
from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.grid import TableSpec
from repro.metrics.measures import coverage, precision
from repro.pipeline.session import Session

SPEC = TableSpec(number=12, names=ALL_NAMES)


def run(session: Session,
        names: tuple[str, ...] = ALL_NAMES,
        include_chain: bool = True) -> Table:
    table = Table(
        exhibit="Table 12",
        title="Performance of the OKN and BDH methods",
        headers=["Benchmark", "OKN pi", "OKN rho", "BDH pi", "BDH rho"],
    )
    columns: list[list[float]] = [[] for _ in range(4)]
    for name in names:
        m = session.measurement(name, cache_config=BASELINE_CONFIG)
        okn_set = okn.classify(
            m.load_infos, m.program,
            include_chain=include_chain).delinquent_set
        bdh_set = bdh.classify(
            m.program, m.load_infos,
            include_chain=include_chain).delinquent_set
        values = (
            precision(okn_set, m.num_loads),
            coverage(okn_set, m.load_misses),
            precision(bdh_set, m.num_loads),
            coverage(bdh_set, m.load_misses),
        )
        for column, value in zip(columns, values):
            column.append(value)
        table.add_row(name, pct(values[0], 2), pct(values[1]),
                      pct(values[2], 2), pct(values[3]))
    table.add_row("AVERAGE", *[pct(mean(c), 2) for c in columns])
    return table
