"""Table 6: the inputs used in the experiments.

A listing of the two parameterizations of every workload (the analogue of
the paper's input files).
"""

from __future__ import annotations

from repro.experiments.common import Table
from repro.experiments.grid import TableSpec
from repro.pipeline.session import Session
from repro.workloads.registry import ALL_WORKLOADS

SPEC = TableSpec(number=6)       # static metadata only, no runs


def run(session: Session) -> Table:
    table = Table(
        exhibit="Table 6",
        title="The inputs used in the experiments",
        headers=["Benchmark", "Input 1", "Input 2"],
    )
    for workload in ALL_WORKLOADS:
        first, second = workload.inputs
        table.add_row(
            workload.name,
            ", ".join(f"{k}={v}" for k, v in first.params),
            ", ".join(f"{k}={v}" for k, v in second.params),
        )
    return table
