"""Table 9: heuristic stability across cache sizes.

Optimized code on 8K/16K/32K/64K 4-way data caches.
"""

from __future__ import annotations

from repro.cache.config import size_sweep
from repro.experiments.common import TRAINING_NAMES, Table, mean, pct
from repro.experiments.evalutil import run_heuristic
from repro.experiments.grid import TableSpec
from repro.metrics.measures import coverage, precision
from repro.pipeline.session import Session

SPEC = TableSpec(number=9, names=TRAINING_NAMES, optimize=True,
                 configs=tuple(size_sweep()))


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES,
        optimize: bool = True) -> Table:
    configs = size_sweep()
    table = Table(
        exhibit="Table 9",
        title="Performance under different cache sizes (optimized code)",
        headers=["Benchmark", "pi"] + [f"{c.size // 1024}k rho"
                                       for c in configs],
    )
    pis: list[float] = []
    rho_cols: list[list[float]] = [[] for _ in configs]
    for name in names:
        row: list[str] = [name]
        delta_set = None
        # one sweep-engine pass covers the whole size grid
        session.stats_multi(name, optimize=optimize,
                            configs=tuple(configs))
        for position, config in enumerate(configs):
            m = session.measurement(name, optimize=optimize,
                                    cache_config=config)
            if delta_set is None:
                result = run_heuristic(m)
                delta_set = result.delinquent_set
                pi = precision(delta_set, m.num_loads)
                pis.append(pi)
                row.append(pct(pi))
            rho = coverage(delta_set, m.load_misses)
            rho_cols[position].append(rho)
            row.append(pct(rho))
        table.rows.append(row)
    table.add_row("AVERAGE", pct(mean(pis)),
                  *[pct(mean(col)) for col in rho_cols])
    return table
