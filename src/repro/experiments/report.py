"""EXPERIMENTS.md generator: paper-vs-measured for every exhibit.

For each regenerated table the report embeds the measured output, quotes
the paper's published averages, and runs an automated *shape check* — the
qualitative claim the exhibit supports (who wins, stability, monotone
trends) — since absolute numbers cannot transfer from the authors' SPEC
binaries on SimpleScalar to synthetic workloads on our simulator.
"""

from __future__ import annotations

import re
from typing import Optional

from repro.experiments import paperdata
from repro.experiments.common import Table

_PCT = re.compile(r"(-?\d+(?:\.\d+)?)%")


def _percents(cell: str) -> list[float]:
    return [float(x) for x in _PCT.findall(cell)]


def _average_row(table: Table) -> Optional[list[str]]:
    for row in table.rows:
        if row[0] == "AVERAGE":
            return row
    return None


def _check(label: str, ok: bool) -> str:
    return f"- [{'x' if ok else ' '}] {label}"


def _shape_checks(number: int, table: Table) -> list[str]:
    if number > 17:          # ablations carry their own assertions
        return []
    avg = _average_row(table)
    checks: list[str] = []
    if avg is None and number not in (2, 3, 4, 5, 6):
        return ["- (no AVERAGE row found)"]
    if number == 1:
        ideal = _percents(avg[2])[0]
        prof = _percents(avg[3])[0]
        rho = _percents(avg[4])[0]
        checks.append(_check(
            f"profiling finds a small fraction of loads "
            f"(measured {prof:.2f}%, paper 4.73%; synthetic binaries "
            f"carry less cold code than SPEC)", prof < 40))
        checks.append(_check(
            f"ideal set is much smaller than the profiling set "
            f"(measured {ideal:.2f}% vs {prof:.2f}%)", ideal < prof))
        checks.append(_check(
            f"profiling coverage is high (measured {rho:.1f}%, "
            f"paper 87.5%)", rho > 60))
    elif number == 7:
        pi1, rho1 = _percents(avg[1])
        pi2, rho2 = _percents(avg[2])
        checks.append(_check(
            f"pi stable across inputs (measured {pi1:.0f}% vs "
            f"{pi2:.0f}%, paper 10% vs 11%)", abs(pi1 - pi2) <= 5))
        checks.append(_check(
            f"rho stable and high across inputs (measured {rho1:.0f}% "
            f"vs {rho2:.0f}%, paper 95/96%)",
            abs(rho1 - rho2) <= 8 and min(rho1, rho2) > 70))
    elif number in (8, 9):
        rhos = [_percents(c)[0] for c in avg[2:]]
        spread = max(rhos) - min(rhos)
        what = "associativities" if number == 8 else "cache sizes"
        checks.append(_check(
            f"rho stable across {what} (measured spread "
            f"{spread:.1f}pp, paper <= 2pp)", spread <= 10))
        checks.append(_check(
            f"rho high everywhere (min {min(rhos):.0f}%, paper ~90%)",
            min(rhos) > 65))
    elif number == 10:
        pi = _percents(avg[1])[0]
        rho = _percents(avg[2])[0]
        checks.append(_check(
            f"held-out pi stays low (measured {pi:.1f}%, paper 9.06%)",
            pi < 25))
        checks.append(_check(
            f"held-out rho stays high (measured {rho:.1f}%, paper "
            f"88.29%)", rho > 65))
    elif number == 11:
        pi1 = _percents(avg[1])[0]
        rho1 = _percents(avg[2])[0]
        pi2 = _percents(avg[4])[0]
        rho2 = _percents(avg[5])[0]
        checks.append(_check(
            f"with AG8/9: ~10% of loads cover ~90% of misses "
            f"(measured pi {pi1:.1f}% rho {rho1:.1f}%, paper 10.15% / "
            f"92.61%)", pi1 < 25 and rho1 > 70))
        checks.append(_check(
            f"dropping AG8/9 widens the set at similar coverage "
            f"(measured pi {pi2:.1f}% vs {pi1:.1f}%, rho {rho2:.1f}%, "
            f"paper 20.82% vs 10.15%)",
            pi2 >= pi1 and abs(rho2 - rho1) <= 8))
    elif number == 12:
        okn_pi, okn_rho = _percents(avg[1])[0], _percents(avg[2])[0]
        bdh_pi, bdh_rho = _percents(avg[3])[0], _percents(avg[4])[0]
        checks.append(_check(
            f"OKN needs far more loads for similar coverage "
            f"(measured pi {okn_pi:.1f}% rho {okn_rho:.0f}%, paper "
            f"55.88% / 92.06%)", okn_pi > 18))
        checks.append(_check(
            f"BDH needs far more loads for similar coverage "
            f"(measured pi {bdh_pi:.1f}% rho {bdh_rho:.0f}%, paper "
            f"50.73% / 93.00%)", bdh_pi > 18))
    elif number == 13:
        pairs = [_percents(c) for c in avg[1:]]
        pis = [p[0] for p in pairs]
        rhos = [p[1] for p in pairs]
        checks.append(_check(
            f"pi falls as delta rises (measured {pis}, paper "
            f"14/12/9/6)", all(a >= b for a, b in zip(pis, pis[1:]))))
        checks.append(_check(
            f"rho falls as delta rises (measured {rhos}, paper "
            f"92/89/78/68)",
            all(a >= b - 1e-9 for a, b in zip(rhos, rhos[1:]))))
    elif number == 14:
        pi0 = _percents(avg[1])[0]
        rho0 = _percents(avg[2])[0]
        rho_star = _percents(avg[3])[0]
        checks.append(_check(
            f"combined scheme pinpoints ~1-3% of loads (measured "
            f"{pi0:.2f}%, paper 1.30%)", pi0 < 8))
        checks.append(_check(
            f"combined coverage stays high (measured {rho0:.0f}%, "
            f"paper 82%)", rho0 > 55))
        checks.append(_check(
            f"random hotspot labelling is far worse (rho* measured "
            f"{rho_star:.0f}%, paper 23%)", rho_star < rho0 - 10))
    elif number == 15:
        data = [row for row in table.rows if row[0] != "AVERAGE"]
        best = max(data, key=lambda row: _percents(row[4])[0])
        best_err, avg_err = float(best[3]), float(avg[3])
        avg_cov = _percents(avg[4])[0]
        checks.append(_check(
            f"prediction error shrinks where coverage grows "
            f"(best-coverage workload {best[0]}: {best_err:.2f} pp "
            f"vs suite average {avg_err:.2f} pp)",
            best_err <= avg_err))
        checks.append(_check(
            f"the coverage gate is earned: suite-average HIGH "
            f"coverage is {avg_cov:.1f}%, far below the 80% "
            f"confidence threshold, so predict_stats serves these "
            f"rows from the measured sweep by default",
            avg_cov < 80.0))
    elif number == 16:
        micro = _percents(avg[1])[0]
        large = _percents(avg[2])[0]
        friendly = _percents(avg[3])[0]
        checks.append(_check(
            f"dTLB misses fall when reach quadruples (measured "
            f"{micro:.2f}% -> {large:.2f}% suite average; LRU "
            f"inclusion makes this a hard guarantee per workload)",
            large <= micro + 1e-9))
        checks.append(_check(
            f"most loads have PCAX-predictable translations "
            f"(measured {friendly:.1f}% friendly; regular array code "
            f"dominates the suite)", friendly > 50))
    elif number == 17:
        redundant = _percents(avg[3])[0]
        ras = _percents(avg[4])[0]
        checks.append(_check(
            f"a large share of load traffic is redundant (measured "
            f"{redundant:.1f}% suite average; re-reads of live "
            f"addresses, the register-promotion opportunity)",
            redundant > 20))
        checks.append(_check(
            f"reload-after-store is a strict subset of redundant "
            f"traffic (measured {ras:.1f}% <= {redundant:.1f}%)",
            ras <= redundant + 1e-9))
    return checks


_PAPER_NOTES = {
    1: "Paper averages: ideal 0.73%, profiling 4.73%, rho 87.5%.",
    2: "Paper counts are full SPEC runs (1e8-1e12 instructions); ours "
       "are scaled-down synthetic instances — compare shapes, not "
       "magnitudes.",
    3: "Paper found 15 H1 classes over its training set (its Table 3); "
       "class structure depends on the workload population.",
    4: "Paper example (class 'sp=1,gp=1'): relevant in 5 of 7 "
       "benchmarks where found, W = 0.47.",
    5: "Paper weights: AG1 +0.28, AG2 +0.33, AG3 +0.47, AG4 +0.16, "
       "AG5 +0.67, AG6 +1.72, AG7 +0.10, AG8 -0.20, AG9 -0.40.  On this "
       "synthetic suite several classes retrain to *neutral*: the "
       "aggregate classes cover nearly all misses (n -> 1), so the "
       "strength index r = m/n collapses to the class miss probability "
       "and falls below the paper's 1/20 bound on at least one "
       "benchmark.  The shipped default therefore remains the paper's "
       "weight vector; Ablation E compares both.",
    6: "Mirrors the paper's Table 6 input listing.",
    7: "Paper averages: 10%/95% on input 1, 11%/96% on input 2.",
    8: "Paper averages: pi 14%; rho 91/92/90% for assoc 2/4/8.",
    9: "Paper averages: pi 14%; rho 92/92/91/91% for 8k/16k/32k/64k.",
    10: "Paper averages: pi 9.06%, rho 88.29%.",
    11: "Paper averages: pi 10.15%, rho 92.61%, xi 14.04%; without "
        "AG8/9: pi 20.82%, rho 92.89%.",
    12: "Paper averages: OKN 55.88%/92.06%, BDH 50.73%/93.00%.",
    13: "Paper averages (pi/rho): 14/92, 12/89, 9/78, 6/68.",
    14: "Paper averages: eps=0 1.30%/82% (rho* 23%), eps=0.3 "
        "3.95%/88%.",
    15: "Not a paper exhibit.  Forced-analytic (no-fallback) "
        "prediction vs. measurement; in normal operation every row "
        "below the 80% coverage threshold is answered by the measured "
        "sweep instead, so the errors here bound the *confessed* "
        "regime, not what predict_stats actually serves.",
    16: "Not a paper exhibit.  The paper targets data-cache misses; "
        "this table replays the same traces at page granularity "
        "through the same sweep engine (micro TLB geometries sized to "
        "the scaled suite) and asks whether delinquent loads' page "
        "translations would be covered by a PCAX-style predictor.",
    17: "Not a paper exhibit.  Redundant loads re-read addresses an "
        "earlier access already touched; reloads after stores are the "
        "store-to-load-forwarding subset.  Delinquent loads with high "
        "redundancy are register-promotion targets, not prefetch "
        "targets.",
}


def render_report(results: dict[int, Table],
                  scale: float = 1.0) -> str:
    lines = [
        "# EXPERIMENTS — paper vs. measured",
        "",
        "Generated by `python -m repro.experiments --report "
        "EXPERIMENTS.md`.",
        "",
        f"Workload scale factor: {scale}.  Absolute values depend on "
        "the synthetic workload sizes; the shape checks below encode "
        "each exhibit's qualitative claim.",
        "",
    ]
    for number in sorted(results):
        table = results[number]
        lines.append(f"## {table.exhibit}: {table.title}")
        lines.append("")
        if number in _PAPER_NOTES:
            lines.append(f"**Paper:** {_PAPER_NOTES[number]}")
            lines.append("")
        lines.append("```")
        lines.append(table.render())
        lines.append("```")
        lines.append("")
        checks = _shape_checks(number, table)
        if checks:
            lines.append("**Shape checks:**")
            lines.append("")
            lines.extend(checks)
            lines.append("")
    return "\n".join(lines)


def write_report(results: dict[int, Table], path: str,
                 scale: float = 1.0) -> None:
    with open(path, "w") as handle:
        handle.write(render_report(results, scale=scale))
