"""Table 13: varying the delinquency threshold delta.

16KB cache, optimized code: raising delta trades coverage for precision,
with benchmark-dependent cliffs.
"""

from __future__ import annotations

from repro.experiments.common import TRAINING_NAMES, Table, mean, pct
from repro.experiments.evalutil import pi_rho, run_heuristic
from repro.experiments.grid import CACHE_16K, TableSpec
from repro.pipeline.session import Session

DELTAS = (0.10, 0.20, 0.30, 0.40)

SPEC = TableSpec(number=13, names=TRAINING_NAMES, optimize=True,
                 configs=(CACHE_16K,))


def run(session: Session,
        names: tuple[str, ...] = TRAINING_NAMES,
        deltas: tuple[float, ...] = DELTAS,
        optimize: bool = True) -> Table:
    table = Table(
        exhibit="Table 13",
        title="Varying the delinquency threshold (pi / rho)",
        headers=["Benchmark"] + [f"delta={d:.2f}" for d in deltas],
    )
    sums: list[tuple[list[float], list[float]]] = [
        ([], []) for _ in deltas
    ]
    for name in names:
        m = session.measurement(name, optimize=optimize,
                                cache_config=CACHE_16K)
        row = [name]
        for position, delta in enumerate(deltas):
            result = run_heuristic(m, delta=delta)
            pi, rho = pi_rho(result.delinquent_set, m)
            sums[position][0].append(pi)
            sums[position][1].append(rho)
            row.append(f"{pct(pi)} / {pct(rho)}")
        table.rows.append(row)
    table.add_row("AVERAGE", *[
        f"{pct(mean(pis))} / {pct(mean(rhos))}" for pis, rhos in sums
    ])
    return table
