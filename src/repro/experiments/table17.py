"""Table 17 (beyond the paper): redundant loads across the AG classes.

A load is *redundant* when it re-reads an address some earlier access
already touched — the value was available without going to memory at
all — and a *reload after store* when the most recent toucher was a
store (classic store-to-load forwarding, or spill/refill traffic).
Both are targets for very different optimizations than the prefetching
the paper motivates, so this exhibit measures how much of each
workload's load traffic is redundant and attributes it to the paper's
AG address-pattern classes (:mod:`repro.redundancy`).

Per workload: total dynamic loads, the redundant fraction, the
reload-after-store fraction, and how much of the *delinquent* loads'
traffic is redundant — delinquent loads that mostly re-read live
addresses are better served by register promotion than by prefetches.
The notes give the suite-wide per-class attribution.
"""

from __future__ import annotations

from repro.experiments.common import ALL_NAMES, Table, mean, pct
from repro.experiments.evalutil import run_heuristic
from repro.experiments.grid import TableSpec
from repro.pipeline.session import Session
from repro.redundancy import ag_crosstab

SPEC = TableSpec(number=17, names=ALL_NAMES)


def run(session: Session,
        names: tuple[str, ...] = ALL_NAMES) -> Table:
    table = Table(
        exhibit="Table 17",
        title="Redundant and reload-after-store load traffic "
              "(beyond the paper)",
        headers=["Benchmark", "loads", "fresh", "redundant",
                 "after store", "delq redundant"],
    )
    ratios: list[float] = []
    ras_fracs: list[float] = []
    delq_fracs: list[float] = []
    class_totals: dict[str, list[int]] = {}
    for name in names:
        stats = session.redundancy(name)
        m = session.measurement(name)
        delinquent = run_heuristic(m).delinquent_set
        delq_loads = delq_redundant = 0
        for pc in delinquent:
            row = stats.loads.get(pc)
            if row is not None:
                delq_loads += row.accesses
                delq_redundant += row.redundant
        delq_frac = delq_redundant / max(delq_loads, 1)
        ras_frac = (stats.total_reload_after_store
                    / max(stats.total_loads, 1))
        ratios.append(stats.ratio)
        ras_fracs.append(ras_frac)
        delq_fracs.append(delq_frac)
        for cls_name, cell in ag_crosstab(stats, m.load_infos,
                                          m.load_exec).items():
            totals = class_totals.setdefault(cls_name, [0, 0, 0])
            totals[0] += cell["loads"]
            totals[1] += cell["redundant"]
            totals[2] += cell["reload_after_store"]
        fresh = stats.total_loads - stats.total_redundant
        table.add_row(name, f"{stats.total_loads:,}", f"{fresh:,}",
                      pct(stats.ratio, 1), pct(ras_frac, 1),
                      pct(delq_frac, 1))
    table.add_row("AVERAGE", "", "", pct(mean(ratios), 1),
                  pct(mean(ras_fracs), 1), pct(mean(delq_fracs), 1))
    table.notes.append(
        "the suite's loops revisit small footprints, so at address "
        "granularity nearly all load traffic is redundant; the fresh "
        "column (first-touch loads) is the footprint, and the "
        "after-store column separates spill/forwarding traffic from "
        "plain re-reads")
    for cls_name, (loads, redundant, ras) in sorted(
            class_totals.items()):
        if not loads:
            continue
        table.notes.append(
            f"{cls_name}: {redundant:,} of {loads:,} loads redundant "
            f"({pct(redundant / loads, 1)}), {ras:,} after a store")
    return table
