"""Bench: regenerate Table 15 (see repro.experiments.table15)."""

from repro.experiments import table15


def test_table15(benchmark, session, record_table):
    table = benchmark.pedantic(
        table15.run, args=(session,), iterations=1, rounds=1)
    record_table(15, table)
    assert table.rows
