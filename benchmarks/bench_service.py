"""Service benchmarks: served warm-cache requests vs cold pipeline runs.

The whole point of the long-lived service is amortization: the first
``analyze`` of a source pays the full pipeline (compile, dataflow,
classify, execute, cache-simulate); every repeat of it is a tiered-
cache lookup plus one TCP round trip.  This bench measures both sides
— per-request cold in-process pipeline cost vs served warm-cache
latency/throughput — plus the coalescing behaviour under concurrent
identical clients, and records the numbers in ``BENCH_service.json``
at the repository root so they ride with the commit that produced
them.

The warm/cold ratio is gated at >= 5x (the PR's acceptance bar); the
measured margin is typically orders of magnitude.
"""

import json
import os
import platform
import statistics
import threading
import time
from pathlib import Path

import pytest

from repro.api import analyze_program
from repro.export import report_to_dict
from repro.service.client import ServiceClient
from repro.service.server import ServerConfig, serve_in_thread
from repro.workloads.registry import get

WORKLOAD = "129.compress"
SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
REPEATS = 25
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_service.json"

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": WORKLOAD,
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


@pytest.fixture(scope="module")
def source():
    return get(WORKLOAD).generate("input1", scale=SCALE)


@pytest.fixture(scope="module")
def server():
    handle = serve_in_thread(ServerConfig(
        port=0, workers=0, use_disk_cache=False))
    yield handle
    handle.stop()


def test_warm_served_vs_cold_pipeline(source, server):
    # cold: what every CLI invocation pays, best of 3
    cold = float("inf")
    for _ in range(3):
        start = time.perf_counter()
        payload = report_to_dict(analyze_program(source))
        cold = min(cold, time.perf_counter() - start)

    with ServiceClient(server.host, server.port) as client:
        served = client.analyze(source)     # pays the pipeline once
        assert json.dumps(served) == json.dumps(payload)
        latencies = []
        for _ in range(REPEATS):
            start = time.perf_counter()
            client.analyze(source)
            latencies.append(time.perf_counter() - start)
    warm = statistics.median(latencies)
    speedup = cold / warm
    _results["warm_vs_cold"] = {
        "cold_pipeline_s": round(cold, 4),
        "warm_request_p50_ms": round(warm * 1e3, 3),
        "warm_request_max_ms": round(max(latencies) * 1e3, 3),
        "warm_throughput_rps": round(1.0 / warm, 1),
        "repeats": REPEATS,
        "speedup": round(speedup, 1),
    }
    _flush()
    # the acceptance bar; the measured margin is typically 100x+
    assert speedup >= 5.0


def test_concurrent_clients_amortize_one_computation(source, server):
    """N concurrent identical requests ~ the cost of one computation."""
    # trailing whitespace: same program, distinct content hash
    flavored = source + "\n\n"
    clients = 6
    latencies: list[float] = []
    lock = threading.Lock()

    def worker() -> None:
        with ServiceClient(server.host, server.port) as client:
            start = time.perf_counter()
            client.analyze(flavored)
            elapsed = time.perf_counter() - start
        with lock:
            latencies.append(elapsed)

    start = time.perf_counter()
    threads = [threading.Thread(target=worker)
               for _ in range(clients)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start

    with ServiceClient(server.host, server.port) as client:
        single = client.metrics()["latency"]["analyze"]
    _results["concurrent_identical"] = {
        "clients": clients,
        "wall_s": round(wall, 4),
        "slowest_client_s": round(max(latencies), 4),
        "server_p50_ms": single["p50_ms"],
    }
    _flush()
    # coalescing: six clients finish in ~one computation's time,
    # nowhere near six sequential pipelines
    cold = _results["warm_vs_cold"]["cold_pipeline_s"]
    assert wall < cold * clients
