"""TLB sweep-engine benchmark.

Times :func:`repro.tlb.simulate_tlb` — the stack-distance sweep behind
it — against per-geometry replays of the mapped cache configs, and
records the numbers in ``BENCH_tlb.json`` at the repository root.

TLB sweeps are the sweep engine's best case: realistic dTLB geometries
are fully associative, so *every* entry count at one page size shares a
single set mapping and the whole entries axis costs one trace pass.
Two phases mirror a reach study:

* **cold** — the full page-size x entries grid against an unprofiled
  trace; the replay baseline pays one pass per geometry.
* **re-sweep** — additional entry counts at the same page sizes,
  answered from the already-stored per-PC distance histograms without
  touching the trace.

The gate (aggregate >= 3x) is enforced only on machines with at least
``GATE_MIN_CPUS`` cores — matching the other gated benchmark jobs, so
an overloaded single-core runner records an honest measurement instead
of a flaky failure.  The sweep results are also asserted bit-identical
to the per-geometry replays, so the bench doubles as an equivalence
check at bench scale.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.cache.model import simulate_trace
from repro.cache.stackdist import ProfileStore
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.tlb import TlbConfig, simulate_tlb
from repro.workloads.registry import get

WORKLOAD = os.environ.get("REPRO_TLB_WORKLOAD", "129.compress")
SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
GATE_MIN_CPUS = 4
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_tlb.json"

#: Page sizes swept (micro-TLB to large-page shapes for the scaled
#: suite's footprints).
PAGE_SIZES = (256, 1024, 4096)

#: The cold grid: every page size crossed with the entry counts shipped
#: dTLBs span.  All fully associative — one set mapping per page size.
SWEEP_GRID = [TlbConfig(page_size=p, entries=e)
              for p in PAGE_SIZES for e in (4, 8, 16, 32)]

#: Follow-up reach ablation over the same page sizes, served from the
#: stored histograms.
RESWEEP_GRID = [TlbConfig(page_size=p, entries=e)
                for p in PAGE_SIZES for e in (2, 64, 128)]

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": WORKLOAD,
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def _stats_key(stats):
    return (stats.config, stats.load_accesses, stats.load_misses,
            stats.store_accesses, stats.store_misses)


@pytest.fixture(scope="module")
def trace():
    source = get(WORKLOAD).generate("input1", scale=SCALE)
    return Machine(compile_source(source)).run().trace


def test_tlb_sweep_speedup(trace):
    replay_cold = replay_re = float("inf")
    sweep_cold = sweep_re = float("inf")
    replay_results = sweep_results = None
    grid = SWEEP_GRID + RESWEEP_GRID
    for _ in range(3):
        start = time.perf_counter()
        cold = [simulate_trace(trace, c.as_cache_config())
                for c in SWEEP_GRID]
        replay_cold = min(replay_cold, time.perf_counter() - start)
        start = time.perf_counter()
        re = [simulate_trace(trace, c.as_cache_config())
              for c in RESWEEP_GRID]
        replay_re = min(replay_re, time.perf_counter() - start)
        replay_results = cold + re

        store = ProfileStore()           # fresh: cold pass each round
        start = time.perf_counter()
        cold = simulate_tlb(trace, SWEEP_GRID, store=store)
        sweep_cold = min(sweep_cold, time.perf_counter() - start)
        start = time.perf_counter()
        re = simulate_tlb(trace, RESWEEP_GRID, store=store)
        sweep_re = min(sweep_re, time.perf_counter() - start)
        sweep_results = cold + re

    # the bench doubles as an equivalence check at bench scale
    assert ([_stats_key(s.cache) for s in sweep_results]
            == [_stats_key(s) for s in replay_results])
    for config, stats in zip(grid, sweep_results):
        assert stats.config == config
        assert stats.total_misses <= stats.total_accesses

    aggregate = (replay_cold + replay_re) / (sweep_cold + sweep_re)
    enforced = (os.cpu_count() or 1) >= GATE_MIN_CPUS
    _results["tlb_sweep"] = {
        "geometries": len(SWEEP_GRID),
        "resweep_geometries": len(RESWEEP_GRID),
        "page_sizes": len(PAGE_SIZES),
        "accesses": len(trace),
        "replay_cold_s": round(replay_cold, 4),
        "replay_resweep_s": round(replay_re, 4),
        "sweep_cold_s": round(sweep_cold, 4),
        "sweep_resweep_s": round(sweep_re, 4),
        "cold_speedup": round(replay_cold / sweep_cold, 2),
        "resweep_speedup": round(replay_re / sweep_re, 2),
        "aggregate_speedup": round(aggregate, 2),
        "gate": {
            "threshold": 3.0,
            "enforced": enforced,
            "cpu_count": os.cpu_count(),
        },
    }
    _flush()
    # 12 fully-assoc geometries cost 3 profiling passes and the reach
    # ablation is served from histograms: measured well above the
    # acceptance gate of >= 3x on development machines
    if enforced:
        assert aggregate >= 3.0
    else:
        assert aggregate > 1.0          # sanity floor, not the gate
