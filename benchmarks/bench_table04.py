"""Bench: regenerate paper Table 04 (see repro.experiments.table04)."""

from repro.experiments import table04


def test_table04(benchmark, session, record_table):
    table = benchmark.pedantic(
        table04.run, args=(session,), iterations=1, rounds=1)
    record_table(4, table)
    assert table.rows
