"""Stack-distance sweep-engine benchmark.

Times :func:`repro.cache.stackdist.simulate_sweep` against the
exec-specialized multi-config replay on the standard size x
associativity grid, and records the numbers in ``BENCH_sweep.json`` at
the repository root so they ride with the commit that produced them.

Two phases mirror how the table suite and the service actually sweep:

* **cold** — the full grid against an unprofiled trace.  The sweep
  engine pays one pass per distinct set mapping instead of one per
  config, so the win is the geometry-to-set-mapping ratio.
* **re-sweep** — a follow-up ablation over new associativities whose
  set mappings are already profiled.  The sweep engine answers from
  per-PC distance histograms in O(static loads) without touching the
  trace; the replay engine pays the full trace again.

The gated ``aggregate`` speedup covers both phases; the sweep results
are also asserted bit-identical to the replay's, so the bench doubles
as an equivalence check at bench scale.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.cache.config import CacheConfig
from repro.cache.model import simulate_trace_multi
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.workloads.registry import get

WORKLOAD = os.environ.get("REPRO_SWEEP_WORKLOAD", "129.compress")
SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_sweep.json"

#: Set-mapping grid behind the sweeps: 32..512 sets of 32 B blocks.
SET_COUNTS = (32, 64, 128, 256, 512)

#: The standard size x associativity sweep: every set mapping crossed
#: with the way counts real data caches ship (2..16, including the
#: non-power-of-two 3/6/12-way shapes), i.e. 2 KB to 256 KB total.
SWEEP_GRID = [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
              for s in SET_COUNTS for a in (2, 3, 4, 6, 8, 12, 16)]

#: Follow-up ablation over the same set mappings: direct-mapped plus
#: odd way counts, all answerable from the already-computed profiles.
RESWEEP_GRID = [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
                for s in SET_COUNTS for a in (1, 5, 7, 10, 14)]

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": WORKLOAD,
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def _stats_key(stats):
    return (stats.config, stats.load_accesses, stats.load_misses,
            stats.store_accesses, stats.store_misses,
            stats.prefetch_ops, stats.prefetch_fills)


@pytest.fixture(scope="module")
def trace():
    source = get(WORKLOAD).generate("input1", scale=SCALE)
    return Machine(compile_source(source)).run().trace


def test_sweep_engine_speedup(trace):
    multi_cold = multi_re = float("inf")
    sweep_cold = sweep_re = float("inf")
    multi_results = sweep_results = None
    for _ in range(3):
        start = time.perf_counter()
        cold = simulate_trace_multi(trace, SWEEP_GRID)
        multi_cold = min(multi_cold, time.perf_counter() - start)
        start = time.perf_counter()
        re = simulate_trace_multi(trace, RESWEEP_GRID)
        multi_re = min(multi_re, time.perf_counter() - start)
        multi_results = cold + re

        store = ProfileStore()           # fresh: cold pass each round
        start = time.perf_counter()
        cold = simulate_sweep(trace, SWEEP_GRID, store=store)
        sweep_cold = min(sweep_cold, time.perf_counter() - start)
        start = time.perf_counter()
        re = simulate_sweep(trace, RESWEEP_GRID, store=store)
        sweep_re = min(sweep_re, time.perf_counter() - start)
        sweep_results = cold + re

    # the bench doubles as an equivalence check at bench scale
    assert ([_stats_key(s) for s in sweep_results]
            == [_stats_key(s) for s in multi_results])

    aggregate = (multi_cold + multi_re) / (sweep_cold + sweep_re)
    _results["sweep_engine"] = {
        "configs": len(SWEEP_GRID),
        "resweep_configs": len(RESWEEP_GRID),
        "set_mappings": len(SET_COUNTS),
        "accesses": len(trace),
        "multi_cold_s": round(multi_cold, 4),
        "multi_resweep_s": round(multi_re, 4),
        "sweep_cold_s": round(sweep_cold, 4),
        "sweep_resweep_s": round(sweep_re, 4),
        "cold_speedup": round(multi_cold / sweep_cold, 2),
        "resweep_speedup": round(multi_re / sweep_re, 2),
        "aggregate_speedup": round(aggregate, 2),
    }
    _flush()
    # one pass per set mapping + histogram-served re-sweep: measured
    # ~10x aggregate; the acceptance gate is >= 5x
    assert aggregate >= 5.0
