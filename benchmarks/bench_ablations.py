"""Ablation benches for the design choices DESIGN.md calls out.

Each bench prints (and times) one controlled comparison:

* slot-aware vs register-only recurrence detection (H4 on -O0 code),
* address-pattern fan-out cap,
* chain inclusion in the OKN/BDH baselines,
* profiled vs statically estimated vs absent frequency classes (AG8/9),
* paper weights vs weights retrained on this suite.
"""

import pytest

from repro.baselines import bdh, okn
from repro.experiments.common import Table, pct
from repro.experiments.evalutil import pi_rho
from repro.heuristic.classifier import DelinquencyClassifier
from repro.heuristic.static_frequency import static_exec_counts
from repro.heuristic.training import BenchmarkTrainingData, train_weights
from repro.metrics.measures import coverage, precision
from repro.patterns.builder import build_load_infos

WORKLOADS = ("181.mcf", "129.compress", "197.parser", "101.tomcatv")


def _measure(session, name):
    return session.measurement(name)


def test_ablation_slot_recurrence(benchmark, session, record_table):
    """Without slot-aware recurrence, H4 goes silent on -O0 code."""

    def run():
        table = Table("Ablation A", "slot-aware vs register-only "
                      "recurrence (unoptimized code)",
                      ["Benchmark", "recurrent loads (slot-aware)",
                       "recurrent loads (register-only)"])
        for name in WORKLOADS:
            m = _measure(session, name)
            with_slots = build_load_infos(m.program,
                                          slot_recurrence=True)
            without = build_load_infos(m.program,
                                       slot_recurrence=False)
            n_with = sum(1 for i in with_slots.values()
                         if i.has_recurrence)
            n_without = sum(1 for i in without.values()
                            if i.has_recurrence)
            table.add_row(name, n_with, n_without)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(101, table)
    for row in table.rows:
        assert int(row[1]) >= int(row[2])
    # at least one benchmark must demonstrate the gap
    assert any(int(row[1]) > int(row[2]) for row in table.rows)


def test_ablation_pattern_cap(benchmark, session, record_table):
    """Tighter fan-out caps lose patterns but barely move Delta."""

    def run():
        table = Table("Ablation B", "address-pattern fan-out cap",
                      ["Benchmark", "|Delta| cap=1", "|Delta| cap=4",
                       "|Delta| cap=16"])
        classifier = DelinquencyClassifier(use_frequency=False)
        for name in WORKLOADS:
            m = _measure(session, name)
            sizes = []
            for cap in (1, 4, 16):
                infos = build_load_infos(m.program, max_patterns=cap)
                sizes.append(len(classifier.classify(
                    infos).delinquent_set))
            table.add_row(name, *sizes)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(102, table)
    for row in table.rows:
        # phi takes a max over patterns: more patterns, never fewer hits
        assert int(row[1]) <= int(row[2]) <= int(row[3])


def test_ablation_baseline_chains(benchmark, session, record_table):
    """Chain inclusion is what drives the baselines' pi to ~50%."""

    def run():
        table = Table("Ablation C", "baseline chain inclusion",
                      ["Benchmark", "OKN pi (chain)", "OKN pi (bare)",
                       "BDH pi (chain)", "BDH pi (bare)"])
        for name in WORKLOADS:
            m = _measure(session, name)
            values = []
            for include in (True, False):
                okn_set = okn.classify(
                    m.load_infos, m.program,
                    include_chain=include).delinquent_set
                values.append(precision(okn_set, m.num_loads))
            for include in (True, False):
                bdh_set = bdh.classify(
                    m.program, m.load_infos,
                    include_chain=include).delinquent_set
                values.append(precision(bdh_set, m.num_loads))
            table.add_row(name, *(pct(v, 1) for v in values))
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(103, table)
    for row in table.rows:
        assert float(row[1].rstrip("%")) >= float(row[2].rstrip("%"))
        assert float(row[3].rstrip("%")) >= float(row[4].rstrip("%"))


def test_ablation_frequency_source(benchmark, session, record_table):
    """AG8/9 from a profile vs from static estimation vs disabled
    (the paper's Section 5.2 suggestion)."""

    def run():
        table = Table("Ablation D", "frequency-class source (pi / rho)",
                      ["Benchmark", "profiled AG8/9", "static AG8/9",
                       "no AG8/9"])
        for name in WORKLOADS:
            m = _measure(session, name)
            cells = []
            profiled = DelinquencyClassifier().classify(
                m.load_infos, m.load_exec, m.profile.hotspot_loads())
            cells.append(pi_rho(profiled.delinquent_set, m))
            static = DelinquencyClassifier().classify(
                m.load_infos,
                exec_counts=static_exec_counts(m.program))
            cells.append(pi_rho(static.delinquent_set, m))
            bare = DelinquencyClassifier(use_frequency=False).classify(
                m.load_infos)
            cells.append(pi_rho(bare.delinquent_set, m))
            table.add_row(name, *(f"{pct(pi)} / {pct(rho)}"
                                  for pi, rho in cells))
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(104, table)
    assert table.rows


def test_ablation_weights(benchmark, session, record_table):
    """Paper's published weights vs weights retrained on this suite."""

    def run():
        data = []
        for name in WORKLOADS:
            m = _measure(session, name)
            data.append(BenchmarkTrainingData.collect(
                name=name, load_infos=m.load_infos,
                exec_counts=m.load_exec, load_misses=m.load_misses,
                hotspot_loads=m.profile.hotspot_loads()))
        retrained = train_weights(data).weights

        table = Table("Ablation E", "paper vs retrained weights "
                      "(pi / rho)",
                      ["Benchmark", "paper weights", "retrained"])
        for name in WORKLOADS:
            m = _measure(session, name)
            cells = []
            for weights in (None, retrained):
                classifier = DelinquencyClassifier(
                    **({} if weights is None else {"weights": weights}))
                result = classifier.classify(
                    m.load_infos, m.load_exec,
                    m.profile.hotspot_loads())
                cells.append(pi_rho(result.delinquent_set, m))
            table.add_row(name, *(f"{pct(pi)} / {pct(rho)}"
                                  for pi, rho in cells))
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(105, table)
    assert table.rows


def test_ablation_delta_tuning(benchmark, session, record_table):
    """Per-benchmark delta tuning (the paper's Section 8.6 suggestion)."""
    from repro.heuristic.delta_tuning import tune_delta

    def run():
        table = Table("Ablation F", "fixed delta=0.10 vs per-benchmark "
                      "tuned delta",
                      ["Benchmark", "fixed (pi / rho)", "tuned delta",
                       "tuned (pi / rho)"])
        for name in WORKLOADS:
            m = _measure(session, name)
            result = DelinquencyClassifier().classify(
                m.load_infos, m.load_exec, m.profile.hotspot_loads())
            fixed = pi_rho(result.delinquent_set, m)
            best = tune_delta(result.scores(), m.load_misses,
                              m.num_loads)
            table.add_row(
                name, f"{pct(fixed[0])} / {pct(fixed[1])}",
                f"{best.delta:.2f}",
                f"{pct(best.pi)} / {pct(best.rho)}")
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(106, table)
    assert table.rows


def test_ablation_profile_fidelity(benchmark, session, record_table):
    """Section 9 under degraded profiles: the combined scheme with
    sampled basic-block profiling (the realistic deployment)."""
    from repro.profiling.combined import combined_delta
    from repro.profiling.sampling import sampled_profile

    def run():
        table = Table("Ablation G", "combined scheme vs profile "
                      "sampling rate (pi / rho at eps=0)",
                      ["Benchmark", "full profile", "10% sample",
                       "1% sample"])
        for name in WORKLOADS:
            m = _measure(session, name)
            heuristic = DelinquencyClassifier().classify(
                m.load_infos, m.load_exec, m.profile.hotspot_loads())
            cells = []
            for rate in (1.0, 0.10, 0.01):
                profile = sampled_profile(m.profile, rate)
                combined = combined_delta(profile.hotspot_loads(),
                                          heuristic, 0.0)
                cells.append(
                    f"{pct(precision(combined, m.num_loads), 1)} / "
                    f"{pct(coverage(combined, m.load_misses))}")
            table.add_row(name, *cells)
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(107, table)
    assert table.rows


def test_ablation_stall_aware_profiling(benchmark, session,
                                        record_table):
    """Entry-count vs stall-aware hotspots: fixing the weakness the
    paper diagnoses on m88ksim (blocks entered often != blocks that
    stall)."""

    def run():
        table = Table("Ablation H", "hotspot model: entry counts vs "
                      "stall-aware cycles (Delta_P coverage)",
                      ["Benchmark", "entry-count rho",
                       "stall-aware rho"])
        for name in WORKLOADS + ("126.gcc", "099.go"):
            m = _measure(session, name)
            plain = coverage(m.profile.hotspot_loads(), m.load_misses)
            aware = coverage(
                m.profile.hotspot_loads_stall_aware(m.load_misses,
                                                    penalty=30),
                m.load_misses)
            table.add_row(name, pct(plain), pct(aware))
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(108, table)
    for row in table.rows:
        assert float(row[2].rstrip("%")) >= float(row[1].rstrip("%")) - 6


def test_ablation_l2_hierarchy(benchmark, session, record_table):
    """Do statically flagged loads also dominate the L2 miss stream?"""
    from repro.cache.hierarchy import simulate_trace_hierarchy
    from repro.machine.simulator import Machine

    def run():
        table = Table("Ablation I", "Delta coverage of L2 misses "
                      "(two-level hierarchy)",
                      ["Benchmark", "pi", "L1 rho", "L2 rho"])
        for name in WORKLOADS[:3]:
            m = _measure(session, name)
            heuristic = DelinquencyClassifier().classify(
                m.load_infos, m.load_exec, m.profile.hotspot_loads())
            delta = heuristic.delinquent_set
            # hierarchy needs the trace: re-execute this workload
            machine = Machine(m.program)
            trace = machine.run().trace
            stats = simulate_trace_hierarchy(trace)
            l1_rho = (sum(stats.l1_load_misses.get(a, 0)
                          for a in delta)
                      / max(1, stats.total_l1_load_misses))
            table.add_row(name, pct(precision(delta, m.num_loads)),
                          pct(l1_rho),
                          pct(stats.l2_miss_coverage(delta)))
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(109, table)
    for row in table.rows:
        assert float(row[3].rstrip("%")) > 50


def test_ablation_prefetch_pass(benchmark, session, record_table):
    """The motivating client: Delta-guided prefetch insertion vs
    prefetching everything, under the stall-cycle model."""
    from repro.prefetch.evaluate import compare_policies

    def run():
        table = Table("Ablation J", "Delta-guided software prefetching "
                      "(cycle model, penalty=30)",
                      ["Benchmark", "Delta speedup", "all-loads speedup",
                       "Delta pref ops", "all pref ops"])
        for name in ("183.equake", "101.tomcatv", "179.art"):
            m = _measure(session, name)
            heuristic = DelinquencyClassifier().classify(
                m.load_infos, m.load_exec, m.profile.hotspot_loads())
            comparison = compare_policies(m.program,
                                          heuristic.delinquent_set)
            table.add_row(
                name,
                f"{comparison.speedup(comparison.delta):.2f}x",
                f"{comparison.speedup(comparison.all_loads):.2f}x",
                f"{comparison.delta.prefetch_ops:,}",
                f"{comparison.all_loads.prefetch_ops:,}")
        return table

    table = benchmark.pedantic(run, iterations=1, rounds=1)
    record_table(110, table)
    for row in table.rows:
        delta_speed = float(row[1].rstrip("x"))
        all_speed = float(row[2].rstrip("x"))
        assert delta_speed >= all_speed - 0.02
