"""Benchmark harness configuration.

One bench per paper table (bench = regenerate the exhibit end to end) plus
component microbenchmarks.  A module-shared :class:`Session` with the
on-disk result cache makes repeated runs cheap; the first run simulates
every workload.

Environment knobs:

* ``REPRO_SCALE``  — workload size multiplier (default 0.25; use 1.0 for
  the full-size runs recorded in EXPERIMENTS.md),
* ``REPRO_NO_DISK_CACHE=1`` — force re-simulation,
* ``REPRO_JOBS`` — worker processes for the pre-warm stage (default:
  CPU count),
* ``REPRO_WARM=0`` — skip the pre-warm stage.

Before the first bench runs, the shared session is *warmed*: every
(workload, input, optimize, cache-config) combination the tables need is
executed and cache-simulated up front — in parallel across
``REPRO_JOBS`` processes, one single-pass multi-config trace replay per
run — so the table benches measure analysis time, not redundant
simulation.

After the run, every produced table is written to
``benchmarks/results/`` and a consolidated paper-vs-measured report to
``EXPERIMENTS.md`` at the repository root.
"""

from __future__ import annotations

import json
import os
import time
from pathlib import Path

import pytest

from repro.experiments.common import Table
from repro.pipeline.session import Session

SCALE = float(os.environ.get("REPRO_SCALE", "0.25"))
RESULTS_DIR = Path(__file__).parent / "results"
REPO_ROOT = Path(__file__).resolve().parents[1]

_collected: dict[int, Table] = {}
_session_started = time.time()


def host_info() -> dict:
    """CPU count and load averages, stamped into every BENCH record.

    Speedup trajectories are only comparable when the host is known:
    a 1.1x parallel "win" on a loaded single-core box and a 5x win on
    an idle 16-core box would otherwise be indistinguishable in the
    committed JSON.
    """
    try:
        load_1, load_5, load_15 = os.getloadavg()
        loadavg = [round(load_1, 2), round(load_5, 2),
                   round(load_15, 2)]
    except OSError:           # platform without getloadavg
        loadavg = None
    return {"cpu_count": os.cpu_count() or 1, "loadavg": loadavg}


def _stamp_bench_hosts() -> None:
    """Add the host block to every BENCH_*.json written by this run."""
    info = host_info()
    for path in REPO_ROOT.glob("BENCH_*.json"):
        try:
            if path.stat().st_mtime < _session_started:
                continue  # stale record from an earlier run
            payload = json.loads(path.read_text())
            if not isinstance(payload, dict):
                continue
            payload["host"] = info
            path.write_text(json.dumps(payload, indent=2) + "\n")
        except (OSError, ValueError):
            continue


@pytest.fixture(scope="session")
def session() -> Session:
    shared = Session(
        scale=SCALE,
        use_disk_cache=os.environ.get("REPRO_NO_DISK_CACHE") != "1",
    )
    if os.environ.get("REPRO_WARM", "1") != "0":
        from repro.pipeline.session import standard_warm_plan
        report = shared.warm(standard_warm_plan())
        print(f"\n[repro] pre-warm: {report.describe()}")
    return shared


@pytest.fixture(scope="session")
def record_table():
    """Returns a callable that persists a produced table."""

    def _record(number: int, table: Table) -> Table:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        path = RESULTS_DIR / f"table{number:02d}.txt"
        path.write_text(table.render() + "\n")
        _collected[number] = table
        return table

    return _record


def pytest_sessionfinish(session, exitstatus):
    """Write the consolidated report once benches ran.

    The root EXPERIMENTS.md is only (re)written when every main table
    (1-15) was produced in this run; partial runs (a single bench, the
    ablations alone) go to benchmarks/results/REPORT.md instead so they
    never clobber the canonical full report.
    """
    _stamp_bench_hosts()
    if not _collected:
        return
    from repro.experiments.report import write_report
    complete = set(range(1, 16)) <= set(_collected)
    target = (REPO_ROOT / "EXPERIMENTS.md") if complete \
        else (RESULTS_DIR / "REPORT.md")
    try:
        RESULTS_DIR.mkdir(parents=True, exist_ok=True)
        write_report(dict(_collected), str(target), scale=SCALE)
    except OSError:
        pass
