"""Component microbenchmarks: throughput of the pipeline stages.

These time the substrate pieces in isolation — compiler, simulator, cache
model, pattern analysis, classifier — so performance regressions in any
stage are visible independently of the table experiments.
"""

import pytest

from repro.cache.config import BASELINE_CONFIG
from repro.cache.model import simulate_trace
from repro.compiler.driver import compile_source
from repro.heuristic.classifier import DelinquencyClassifier
from repro.machine.simulator import Machine
from repro.patterns.builder import build_load_infos
from repro.workloads.registry import get

WORKLOAD = "129.compress"
SCALE = 0.15


@pytest.fixture(scope="module")
def source():
    return get(WORKLOAD).generate("input1", scale=SCALE)


@pytest.fixture(scope="module")
def program(source):
    return compile_source(source)


@pytest.fixture(scope="module")
def trace(program):
    return Machine(program).run().trace


def test_compile_throughput(benchmark, source):
    program = benchmark(compile_source, source)
    assert program.num_loads() > 0


def test_simulator_throughput(benchmark, program):
    def run():
        return Machine(program, trace_memory=False).run()

    result = benchmark.pedantic(run, iterations=1, rounds=3)
    benchmark.extra_info["instructions"] = result.steps
    assert result.exit_code == 0


def test_cache_simulation_throughput(benchmark, trace):
    stats = benchmark.pedantic(simulate_trace,
                               args=(trace, BASELINE_CONFIG),
                               iterations=1, rounds=3)
    benchmark.extra_info["accesses"] = len(trace)
    assert stats.total_load_misses > 0


def test_pattern_analysis_throughput(benchmark, program):
    infos = benchmark(build_load_infos, program)
    assert len(infos) == program.num_loads()


def test_classifier_throughput(benchmark, program):
    infos = build_load_infos(program)
    classifier = DelinquencyClassifier(use_frequency=False)
    result = benchmark(classifier.classify, infos)
    assert result.delinquent_set
