"""Execution-engine benchmark: blocks vs closures trace generation.

Times full traced executions of the standard workload sweep under both
:class:`Machine` engines and records the speedups in
``BENCH_machine.json`` at the repository root, so the numbers ride with
the commit that produced them.  Every timed pair is also checked for
the engines' core contract — byte-identical trace columns and an
identical :class:`ExecutionResult` — so the benchmark doubles as an
end-to-end equivalence gate at realistic scale.

Environment knobs:

* ``REPRO_SCALE`` — workload size multiplier (default 0.1),
* ``REPRO_MACHINE_WORKLOADS`` — comma-separated workload names to
  restrict the sweep (CI uses a reduced sweep).
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.compiler.driver import compile_source
from repro.machine.simulator import (ENGINE_BLOCKS, ENGINE_CLOSURES,
                                     Machine)
from repro.workloads.registry import get

SCALE = float(os.environ.get("REPRO_SCALE", "0.1"))
_DEFAULT_SWEEP = ("129.compress", "181.mcf", "099.go",
                  "164.gzip", "183.equake", "124.m88ksim")
SWEEP = tuple(
    name.strip()
    for name in os.environ.get("REPRO_MACHINE_WORKLOADS", "").split(",")
    if name.strip()) or _DEFAULT_SWEEP
ROUNDS = 3
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_machine.json"

#: The acceptance gate: block compilation must at least halve trace
#: generation time over the sweep.
REQUIRED_SPEEDUP = 2.0

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "scale": SCALE,
        "rounds": ROUNDS,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def _timed_pair(program):
    """Best-of-rounds wall time for one traced execution under each
    engine (compilation excluded — a fresh Machine is built outside the
    timed region).  Rounds interleave the engines so clock-speed drift
    on a busy host biases both sides equally instead of skewing the
    ratio."""
    best = {ENGINE_CLOSURES: float("inf"), ENGINE_BLOCKS: float("inf")}
    outcome = {}
    for _ in range(ROUNDS):
        for engine in (ENGINE_CLOSURES, ENGINE_BLOCKS):
            machine = Machine(program, trace_memory=True, engine=engine)
            start = time.perf_counter()
            result = machine.run()
            best[engine] = min(best[engine],
                               time.perf_counter() - start)
            outcome[engine] = (result, machine)
    return best, outcome


@pytest.fixture(scope="module")
def programs():
    return {name: compile_source(get(name).generate("input1",
                                                    scale=SCALE))
            for name in SWEEP}


def test_block_engine_speedup(programs):
    total_closures = total_blocks = 0.0
    per_workload = {}
    for name, program in programs.items():
        best, outcome = _timed_pair(program)
        closures_s = best[ENGINE_CLOSURES]
        blocks_s = best[ENGINE_BLOCKS]
        ref, ref_machine = outcome[ENGINE_CLOSURES]
        out, out_machine = outcome[ENGINE_BLOCKS]
        # The speedup only counts if the engines agree bit for bit.
        assert out_machine._block_engine is not None, \
            f"{name}: blocks engine fell back to closures"
        assert out.steps == ref.steps
        assert out.exit_code == ref.exit_code
        assert out.output == ref.output
        assert out.block_counts == ref.block_counts
        assert (out_machine.trace.pcs.tobytes()
                == ref_machine.trace.pcs.tobytes())
        assert (out_machine.trace.addresses.tobytes()
                == ref_machine.trace.addresses.tobytes())
        assert (out_machine.trace.kinds.tobytes()
                == ref_machine.trace.kinds.tobytes())
        total_closures += closures_s
        total_blocks += blocks_s
        per_workload[name] = {
            "steps": ref.steps,
            "accesses": len(ref_machine.trace),
            "closures_s": round(closures_s, 4),
            "blocks_s": round(blocks_s, 4),
            "speedup": round(closures_s / blocks_s, 2),
        }
    aggregate = total_closures / total_blocks
    _results["trace_generation"] = {
        "workloads": per_workload,
        "closures_total_s": round(total_closures, 4),
        "blocks_total_s": round(total_blocks, 4),
        "aggregate_speedup": round(aggregate, 2),
    }
    _flush()
    assert aggregate >= REQUIRED_SPEEDUP, (
        f"blocks engine {aggregate:.2f}x < {REQUIRED_SPEEDUP}x "
        f"over {', '.join(SWEEP)}")
