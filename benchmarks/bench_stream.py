"""Streaming trace-pipeline benchmark.

Times the two claims behind the out-of-core trace pipeline and records
the numbers in ``BENCH_stream.json`` at the repository root so they
ride with the commit that produced them:

* **store-warmed re-analysis** — a second session pointed at a warm
  cache directory analyses *new* cache configurations without
  re-executing the workload: the access stream comes back from the
  compressed trace store, per-PC access counts from its meta sidecar,
  and the LRU miss counts from the persisted stack-distance profiles.
  Gated at >= 5x over the cold execute+replay, and asserted
  bit-identical to a from-scratch materialized session.

* **out-of-core execution** — a synthetic workload whose trace is an
  order of magnitude larger than the streaming pipeline's peak RSS is
  executed and replayed entirely through the store in a subprocess;
  the gate asserts raw trace bytes >= 10x the streamed peak RSS and
  that the streamed CacheStats fingerprint matches a materialized
  subprocess bit for bit.  The compression ratio of the stored blob is
  recorded alongside.
"""

import hashlib
import json
import os
import platform
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import pytest

from repro.cache.config import CacheConfig
from repro.pipeline.session import Session
from repro.store import TraceStore, trace_key

WORKLOAD = os.environ.get("REPRO_STREAM_WORKLOAD", "129.compress")
SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
#: Outer-loop trips of the synthetic out-of-core workload: ~459k trace
#: rows per pass, so the default traces ~46M accesses (~413 MB raw).
PASSES = int(os.environ.get("REPRO_STREAM_PASSES", "100"))
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_stream.json"
SRC = REPO_ROOT / "src"

#: Cold grid: a size x associativity sweep (more geometries than set
#: mappings), so the cold session profiles the three set mappings and
#: persists the stack-distance histograms beside the trace store.
COLD_GRID = [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
             for s in (64, 128, 256) for a in (2, 4, 8)]
#: Warm grid: new associativities over the same set mappings — a result
#: cache miss everywhere, answerable without re-execution or any trace
#: chunk decoding (meta access counts + persisted histograms).
WARM_GRID = [CacheConfig(size=s * a * 32, assoc=a, block_size=32)
             for s in (64, 128, 256) for a in (1, 3, 6)]

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": WORKLOAD,
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def _stats_key(stats):
    return (stats.config, stats.load_accesses, stats.load_misses,
            stats.store_accesses, stats.store_misses,
            stats.prefetch_ops, stats.prefetch_fills)


def test_store_warmed_reanalysis_speedup():
    with tempfile.TemporaryDirectory() as tmp:
        cache_dir = Path(tmp)
        cold_session = Session(scale=SCALE, cache_dir=cache_dir)
        start = time.perf_counter()
        cold_session.stats_multi(WORKLOAD, configs=COLD_GRID)
        cold_s = time.perf_counter() - start

        store = TraceStore(cache_dir / "traces")
        key = trace_key(cold_session.source(WORKLOAD), False,
                        cold_session.max_steps)
        meta = store.meta(key)
        assert meta is not None, "cold run did not populate the store"
        raw_bytes = meta["rows"] * 9
        bin_bytes = store._bin(key).stat().st_size

        warm_session = Session(scale=SCALE, cache_dir=cache_dir)
        start = time.perf_counter()
        warm_stats = warm_session.stats_multi(WORKLOAD,
                                              configs=WARM_GRID)
        warm_s = time.perf_counter() - start

        # bit-identical to a from-scratch materialized session
        reference = Session(scale=SCALE, use_disk_cache=False) \
            .stats_multi(WORKLOAD, configs=WARM_GRID)
        assert ([_stats_key(s) for s in warm_stats]
                == [_stats_key(s) for s in reference])

    speedup = cold_s / warm_s
    _results["store_warmed_reanalysis"] = {
        "cold_configs": len(COLD_GRID),
        "warm_configs": len(WARM_GRID),
        "trace_rows": meta["rows"],
        "raw_trace_bytes": raw_bytes,
        "stored_bytes": bin_bytes,
        "compression_ratio": round(raw_bytes / bin_bytes, 1),
        "cold_s": round(cold_s, 4),
        "warm_s": round(warm_s, 4),
        "speedup": round(speedup, 1),
    }
    _flush()
    # warm re-analysis executes nothing and reads no trace chunks:
    # measured ~100x; the acceptance gate is >= 5x
    assert speedup >= 5.0


_CHILD = r"""
import hashlib, json, resource, sys, tempfile
from pathlib import Path

def peak_rss_kb():
    # VmHWM resets on execve; ru_maxrss does NOT, so a child forked
    # from a fat parent would inherit the parent's COW-resident peak.
    try:
        with open("/proc/self/status") as status:
            for line in status:
                if line.startswith("VmHWM:"):
                    return int(line.split()[1])
    except OSError:
        pass
    return resource.getrusage(resource.RUSAGE_SELF).ru_maxrss

from repro.cache.config import BASELINE_CONFIG
from repro.cache.model import simulate_trace
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.store import TraceStore

mode, passes = sys.argv[1], int(sys.argv[2])
source = '''
int a[65536];
int main() {
    int i; int j; int s;
    s = 0;
    for (j = 0; j < %d; j = j + 1)
        for (i = 0; i < 65536; i = i + 1)
            s = s + a[i];
    return s & 127;
}
''' % passes
program = compile_source(source)
machine = Machine(program)
bin_bytes = 0
if mode == "materialized":
    result = machine.run()
    rows = len(result.trace)
    stats = simulate_trace(result.trace, BASELINE_CONFIG)
else:
    with tempfile.TemporaryDirectory() as tmp:
        store = TraceStore(Path(tmp) / "traces")
        writer = store.writer("k")
        result = machine.run_streaming(writer)
        meta = writer.close(block_counts=result.block_counts,
                            steps=result.steps)
        rows = meta["rows"]
        bin_bytes = store._bin("k").stat().st_size
        stats = simulate_trace(store.open("k"), BASELINE_CONFIG)
fingerprint = hashlib.sha1(json.dumps({
    "load_accesses": sorted(stats.load_accesses.items()),
    "load_misses": sorted(stats.load_misses.items()),
    "store_accesses": sorted(stats.store_accesses.items()),
    "store_misses": sorted(stats.store_misses.items()),
}).encode()).hexdigest()
print(json.dumps({
    "rows": rows,
    "steps": result.steps,
    "bin_bytes": bin_bytes,
    "fingerprint": fingerprint,
    "rss_kb": peak_rss_kb(),
}))
"""


def _run_child(mode: str) -> dict:
    result = subprocess.run(
        [sys.executable, "-c", _CHILD, mode, str(PASSES)],
        capture_output=True, text=True,
        env={**os.environ, "PYTHONPATH": str(SRC)})
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout)


def test_out_of_core_rss_bound():
    streamed = _run_child("streamed")
    materialized = _run_child("materialized")
    assert streamed["fingerprint"] == materialized["fingerprint"]
    assert streamed["steps"] == materialized["steps"]
    assert streamed["rows"] == materialized["rows"]

    raw_bytes = streamed["rows"] * 9
    streamed_rss = streamed["rss_kb"] * 1024
    scale_factor = raw_bytes / streamed_rss
    _results["out_of_core"] = {
        "passes": PASSES,
        "trace_rows": streamed["rows"],
        "raw_trace_bytes": raw_bytes,
        "stored_bytes": streamed["bin_bytes"],
        "compression_ratio": round(raw_bytes / streamed["bin_bytes"], 1),
        "streamed_peak_rss_kb": streamed["rss_kb"],
        "materialized_peak_rss_kb": materialized["rss_kb"],
        "rss_ratio": round(materialized["rss_kb"]
                           / streamed["rss_kb"], 1),
        "trace_over_rss": round(scale_factor, 1),
    }
    _flush()
    # the workload's trace must dwarf the streaming pipeline's whole
    # peak RSS (interpreter included) by an order of magnitude, and
    # streaming must actually cap RSS well below materializing
    assert scale_factor >= 10.0, (
        f"trace {raw_bytes} B only {scale_factor:.1f}x the streamed "
        f"peak RSS {streamed_rss} B")
    assert streamed["rss_kb"] < materialized["rss_kb"] / 2
