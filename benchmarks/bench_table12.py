"""Bench: regenerate paper Table 12 (see repro.experiments.table12)."""

from repro.experiments import table12


def test_table12(benchmark, session, record_table):
    table = benchmark.pedantic(
        table12.run, args=(session,), iterations=1, rounds=1)
    record_table(12, table)
    assert table.rows
