"""Campaign benchmarks: full-grid regeneration vs the serial runner.

Three phases, each against its own cold cache directory:

1. **serial** — the historical baseline: one :class:`Session`, every
   table rendered in sequence by ``run_tables`` (session memoization
   still shares runs between tables — this is the honest pre-campaign
   workflow, not a strawman),
2. **campaign** — the DAG engine fanning run/analytic cells across a
   process pool sized to the machine,
3. **resume** — the same campaign re-run with ``--resume`` semantics:
   must compute zero cells and finish in seconds.

Results land in ``BENCH_campaign.json`` at the repository root.  The
acceptance gate — campaign >= 3x faster than serial — is enforced only
when the machine has enough cores (>= 4) for the fan-out to be real;
on smaller boxes the measurement is still recorded with the gate
marked unenforced and only a sanity floor asserted (the scheduler must
not slow full regeneration down), so the numbers stay honest either
way.  Byte-identical table output vs the serial baseline is asserted
unconditionally.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.campaign import Campaign
from repro.experiments.runner import run_tables
from repro.pipeline.session import Session

TABLES = tuple(range(1, 16))
SCALE = float(os.environ.get("REPRO_CAMPAIGN_SCALE", "0.03"))
GATE_SPEEDUP = 3.0
GATE_MIN_CPUS = 4       # cores needed for the fan-out to be real

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_campaign.json"

_results: dict = {}
_tables: dict = {}      # phase name -> {number: rendered text}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "tables": list(TABLES),
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def test_serial_baseline(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("campaign-serial")
    session = Session(scale=SCALE, cache_dir=cache_dir)
    start = time.perf_counter()
    produced = run_tables(session, list(TABLES), echo=False)
    wall = time.perf_counter() - start
    _tables["serial"] = {number: table.render()
                         for number, table in produced.items()}
    _results["serial"] = {"wall_s": round(wall, 3)}
    _flush()


def test_campaign_parallel(tmp_path_factory):
    cache_dir = tmp_path_factory.mktemp("campaign-parallel")
    session = Session(scale=SCALE, cache_dir=cache_dir)
    campaign = Campaign(session, numbers=TABLES)
    _results["campaign_dir"] = str(campaign.directory)
    start = time.perf_counter()
    result = campaign.run(jobs=os.cpu_count())
    wall = time.perf_counter() - start
    _tables["campaign"] = dict(result.tables)
    _results["campaign"] = {
        "wall_s": round(wall, 3),
        "jobs": os.cpu_count(),
        "computed": result.computed,
        "cached": result.cached,
        "profile_store": result.profile_store,
    }
    # the resume phase reuses this campaign's cache + manifest
    _results["_campaign_cache"] = str(cache_dir)
    _flush()


def test_campaign_resume():
    cache_dir = _results.pop("_campaign_cache", None)
    assert cache_dir, "run the campaign phase first"
    session = Session(scale=SCALE, cache_dir=Path(cache_dir))
    campaign = Campaign(session, numbers=TABLES)
    start = time.perf_counter()
    result = campaign.run(resume=True)
    wall = time.perf_counter() - start
    _results["resume"] = {
        "wall_s": round(wall, 3),
        "computed": result.computed,
        "skipped": result.skipped,
    }
    _flush()
    # the whole point of the manifest: zero recomputation
    assert result.computed == 0
    assert result.skipped == len(campaign.plan())
    assert {n: t for n, t in result.tables.items()} \
        == _tables["campaign"]


def test_speedup_gate():
    serial = _results.get("serial")
    parallel = _results.get("campaign")
    assert serial and parallel, "run the measurement phases first"
    # correctness before speed: identical bytes from both paths
    assert _tables["campaign"] == _tables["serial"]
    speedup = serial["wall_s"] / parallel["wall_s"]
    enforced = (os.cpu_count() or 1) >= GATE_MIN_CPUS
    _results["gate"] = {
        "speedup": round(speedup, 2),
        "threshold": GATE_SPEEDUP,
        "enforced": enforced,
        "cpu_count": os.cpu_count(),
        "reason": None if enforced else (
            f"fewer than {GATE_MIN_CPUS} cores: the process pool "
            f"shares the same silicon as the serial baseline, so the "
            f"speedup is measured but not gated"),
    }
    _flush()
    if enforced:
        assert speedup >= GATE_SPEEDUP
    else:
        # even single-core, the DAG scheduler must not make full
        # regeneration meaningfully slower than the serial runner
        assert speedup >= 0.6
