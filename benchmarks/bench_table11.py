"""Bench: regenerate paper Table 11 (see repro.experiments.table11)."""

from repro.experiments import table11


def test_table11(benchmark, session, record_table):
    table = benchmark.pedantic(
        table11.run, args=(session,), iterations=1, rounds=1)
    record_table(11, table)
    assert table.rows
