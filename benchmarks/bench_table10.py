"""Bench: regenerate paper Table 10 (see repro.experiments.table10)."""

from repro.experiments import table10


def test_table10(benchmark, session, record_table):
    table = benchmark.pedantic(
        table10.run, args=(session,), iterations=1, rounds=1)
    record_table(10, table)
    assert table.rows
