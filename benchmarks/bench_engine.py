"""Experiment-engine benchmarks.

Times the single-pass multi-configuration replay against N serial
:func:`simulate_trace` calls (and the hierarchy counterpart), plus the
parallel ``Session.warm`` stage against the serial path, and records
the measured speedups in ``BENCH_engine.json`` at the repository root
so the numbers ride with the commit that produced them.

The multi-config speedup comes from sharing the trace decode, kind
dispatch, block division and per-PC access counting across configs —
it is expected on any machine.  The warm-stage speedup needs real
parallel hardware; on a single-core box the process fan-out can only
add overhead, so that assertion is gated on ``os.cpu_count() > 1`` and
the honest number is recorded either way.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.cache.config import (BASELINE_CONFIG, TRAINING_CONFIG,
                                CacheConfig, associativity_sweep,
                                size_sweep)
from repro.cache.hierarchy import (DEFAULT_HIERARCHY, HierarchyConfig,
                                   simulate_trace_hierarchy,
                                   simulate_trace_hierarchy_multi)
from repro.cache.model import simulate_trace, simulate_trace_multi
from repro.compiler.driver import compile_source
from repro.machine.simulator import Machine
from repro.pipeline.session import Session
from repro.workloads.registry import get

WORKLOAD = "129.compress"
SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
WARM_SCALE = SCALE / 3
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_engine.json"

#: The shapes the table suite actually sweeps.
CONFIGS = list(dict.fromkeys(
    [BASELINE_CONFIG, TRAINING_CONFIG]
    + associativity_sweep() + size_sweep()))

HIERARCHIES = [
    DEFAULT_HIERARCHY,
    HierarchyConfig(l1=CacheConfig(4 * 1024, 2, 32),
                    l2=CacheConfig(64 * 1024, 8, 64)),
    HierarchyConfig(l1=CacheConfig(16 * 1024, 4, 32),
                    l2=CacheConfig(256 * 1024, 8, 64)),
]

WARM_PLAN = [(name, "input1", False, (BASELINE_CONFIG, TRAINING_CONFIG))
             for name in ("129.compress", "181.mcf", "099.go",
                          "164.gzip")]

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def _best(fn, rounds: int = 3) -> float:
    best = float("inf")
    for _ in range(rounds):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


@pytest.fixture(scope="module")
def trace():
    source = get(WORKLOAD).generate("input1", scale=SCALE)
    return Machine(compile_source(source)).run().trace


def test_multi_config_replay_speedup(trace):
    serial = _best(lambda: [simulate_trace(trace, config)
                            for config in CONFIGS])
    multi = _best(lambda: simulate_trace_multi(trace, CONFIGS))
    speedup = serial / multi
    _results["multi_config_replay"] = {
        "configs": len(CONFIGS),
        "accesses": len(trace),
        "serial_s": round(serial, 4),
        "multi_s": round(multi, 4),
        "speedup": round(speedup, 2),
    }
    _flush()
    # "measurably faster": well clear of timer noise, far below the
    # ~2x actually measured, so the gate never flakes.
    assert speedup > 1.2


def test_hierarchy_multi_replay_speedup(trace):
    serial = _best(lambda: [simulate_trace_hierarchy(trace, config)
                            for config in HIERARCHIES])
    multi = _best(
        lambda: simulate_trace_hierarchy_multi(trace, HIERARCHIES))
    speedup = serial / multi
    _results["hierarchy_multi_replay"] = {
        "configs": len(HIERARCHIES),
        "accesses": len(trace),
        "serial_s": round(serial, 4),
        "multi_s": round(multi, 4),
        "speedup": round(speedup, 2),
    }
    _flush()
    assert speedup > 1.2


def test_warm_parallel_speedup(tmp_path):
    def timed_warm(jobs: int, cache_dir: Path) -> float:
        session = Session(scale=WARM_SCALE, cache_dir=cache_dir)
        start = time.perf_counter()
        report = session.warm(WARM_PLAN, jobs=jobs)
        elapsed = time.perf_counter() - start
        assert report.simulated == len(WARM_PLAN)
        return elapsed

    cores = os.cpu_count() or 1
    # Size the fan-out to the hardware: oversubscribing (the old fixed
    # jobs=4) turns a 1-CPU "speedup" into pure fork/IPC overhead.
    jobs = min(cores, len(WARM_PLAN))
    serial = timed_warm(1, tmp_path / "serial")
    parallel = timed_warm(jobs, tmp_path / "parallel")
    speedup = serial / parallel
    informational = cores < 2
    _results["warm_parallel"] = {
        "runs": len(WARM_PLAN),
        "jobs": jobs,
        "serial_s": round(serial, 4),
        "parallel_s": round(parallel, 4),
        "speedup": round(speedup, 2),
        # without a second core there is nothing to fan out over, so
        # the number is recorded for the machine report but not gated
        "informational": informational,
    }
    _flush()
    if not informational:
        # with real cores the fan-out must beat the serial loop
        assert speedup > 1.0
