"""Bench: regenerate paper Table 09 (see repro.experiments.table09)."""

from repro.experiments import table09


def test_table09(benchmark, session, record_table):
    table = benchmark.pedantic(
        table09.run, args=(session,), iterations=1, rounds=1)
    record_table(9, table)
    assert table.rows
