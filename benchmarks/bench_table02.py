"""Bench: regenerate paper Table 02 (see repro.experiments.table02)."""

from repro.experiments import table02


def test_table02(benchmark, session, record_table):
    table = benchmark.pedantic(
        table02.run, args=(session,), iterations=1, rounds=1)
    record_table(2, table)
    assert table.rows
