"""Bench: regenerate paper Table 01 (see repro.experiments.table01)."""

from repro.experiments import table01


def test_table01(benchmark, session, record_table):
    table = benchmark.pedantic(
        table01.run, args=(session,), iterations=1, rounds=1)
    record_table(1, table)
    assert table.rows
