"""Bench: regenerate paper Table 14 (see repro.experiments.table14)."""

from repro.experiments import table14


def test_table14(benchmark, session, record_table):
    table = benchmark.pedantic(
        table14.run, args=(session,), iterations=1, rounds=1)
    record_table(14, table)
    assert table.rows
