"""Bench: regenerate paper Table 03 (see repro.experiments.table03)."""

from repro.experiments import table03


def test_table03(benchmark, session, record_table):
    table = benchmark.pedantic(
        table03.run, args=(session,), iterations=1, rounds=1)
    record_table(3, table)
    assert table.rows
