"""Bench: regenerate paper Table 07 (see repro.experiments.table07)."""

from repro.experiments import table07


def test_table07(benchmark, session, record_table):
    table = benchmark.pedantic(
        table07.run, args=(session,), iterations=1, rounds=1)
    record_table(7, table)
    assert table.rows
