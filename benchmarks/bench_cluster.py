"""Cluster benchmarks: warm throughput scaling across worker counts.

Spawns real ``repro serve`` worker subprocesses (1, 2, then 4) behind
the consistent-hash router, warms every source once, and measures warm
analyze throughput with concurrent client threads.  Because the ring
pins each key to one worker, warm requests are embarrassingly parallel
across workers — throughput should scale with worker count whenever
real cores back the processes.

Results land in ``BENCH_cluster.json`` at the repository root.  The
acceptance gate — >= 1.5x throughput at 4 workers vs 1 — is enforced
only when the machine has enough cores (>= 6) to make scaling
physically possible; on smaller CI boxes the measurement is still
recorded and only a sanity floor is asserted (routing overhead must
not *halve* throughput), with the gate marked unenforced and the CPU
count recorded alongside, so the numbers stay honest either way.
"""

import json
import os
import platform
import tempfile
import threading
import time
from pathlib import Path

import pytest

from repro.cluster import ClusterClient, RouterConfig, route_in_thread, \
    spawn_workers

WORKER_COUNTS = (1, 2, 4)
CLIENT_THREADS = 8
REQUESTS_PER_CLIENT = 25
GATE_SPEEDUP = 1.5
GATE_MIN_CPUS = 6       # cores needed for 4-worker scaling to be real

REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_cluster.json"

SMALL = ("int a[64]; int main() { int i; "
         "for (i = 0; i < 64; i = i + 1) a[i] = i; "
         "print_int(a[9]); return 0; }")

#: distinct sources so keys spread across the ring
SOURCES = [SMALL.replace("a[9]", f"a[{tag}]") for tag in range(12)]

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "clients": CLIENT_THREADS,
        "requests_per_client": REQUESTS_PER_CLIENT,
        "sources": len(SOURCES),
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


def _measure(address: str) -> dict:
    """Warm-throughput measurement against one cluster endpoint."""
    with ClusterClient.connect(address, timeout=120.0) as client:
        for source in SOURCES:     # warm every key once
            client.analyze(source)

    latencies: list[float] = []
    lock = threading.Lock()

    def worker(offset: int) -> None:
        local: list[float] = []
        with ClusterClient.connect(address, timeout=120.0) as client:
            for index in range(REQUESTS_PER_CLIENT):
                source = SOURCES[(offset + index) % len(SOURCES)]
                start = time.perf_counter()
                client.analyze(source)
                local.append(time.perf_counter() - start)
        with lock:
            latencies.extend(local)

    start = time.perf_counter()
    threads = [threading.Thread(target=worker, args=(offset,))
               for offset in range(CLIENT_THREADS)]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join()
    wall = time.perf_counter() - start
    total = CLIENT_THREADS * REQUESTS_PER_CLIENT
    latencies.sort()
    return {
        "requests": total,
        "wall_s": round(wall, 4),
        "throughput_rps": round(total / wall, 1),
        "p50_ms": round(latencies[total // 2] * 1e3, 3),
        "p99_ms": round(latencies[int(total * 0.99)] * 1e3, 3),
    }


@pytest.mark.parametrize("workers", WORKER_COUNTS)
def test_warm_throughput(workers, tmp_path_factory):
    # one disk-cache dir shared by every worker of this config, so the
    # warm-up pass costs one pipeline per source at most
    cache_dir = tmp_path_factory.mktemp(f"cluster-cache-{workers}")
    spawned = spawn_workers(workers, pool_workers=0,
                            cache_dir=str(cache_dir))
    try:
        router = route_in_thread(
            RouterConfig(port=0, probe_interval=5.0),
            tuple(w.address for w in spawned),
            processes={w.address: w for w in spawned})
        try:
            _results[f"workers_{workers}"] = _measure(router.address)
        finally:
            router.stop()
    finally:
        for worker in spawned:
            worker.stop()
    _flush()


def test_scaling_gate():
    one = _results.get("workers_1")
    four = _results.get("workers_4")
    assert one and four, "run the per-count benches first"
    scaling = four["throughput_rps"] / one["throughput_rps"]
    enforced = (os.cpu_count() or 1) >= GATE_MIN_CPUS
    _results["scaling"] = {
        "throughput_4w_vs_1w": round(scaling, 2),
        "gate": {
            "threshold": GATE_SPEEDUP,
            "enforced": enforced,
            "cpu_count": os.cpu_count(),
            "reason": None if enforced else (
                f"fewer than {GATE_MIN_CPUS} cores: 4 worker "
                f"processes share the same silicon, so scaling is "
                f"measured but not gated"),
        },
    }
    _flush()
    if enforced:
        assert scaling >= GATE_SPEEDUP
    else:
        # even without spare cores the router must not halve warm
        # throughput: warm requests are cache hits, not compute
        assert scaling >= 0.4
