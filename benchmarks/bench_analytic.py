"""Analytic reuse-engine benchmark: the grid with zero executions.

Times the analytic prediction path (``predict_profile`` + per-config
``evaluate``) against the fastest *measured* answer to the same
question — one machine execution to obtain the trace plus one
stack-distance sweep over the grid — and records the numbers in
``BENCH_analytic.json`` at the repository root.

The grid is the paper's associativity + size sweep (tables 8/9), the
same one ``repro predict --sweep`` serves.  The measured path uses the
sweep engine (already ~10x faster than replay, see ``bench_sweep``),
so the gated speedup is against the strongest baseline that still has
to run the workload.  The analytic phase is executed under a tripwire
that fails the bench if any machine execution starts, making "zero
executions" an assertion rather than a claim.

Once a trace exists, a histogram-served re-sweep answers new configs in
microseconds — faster than predicting.  That number is recorded too
(``resweep_warm_s``): the analytic win is *avoiding the execution*, not
beating warmed histograms.
"""

import json
import os
import platform
import time
from pathlib import Path

import pytest

from repro.analytic import predict_profile
from repro.cache.config import associativity_sweep, size_sweep
from repro.cache.stackdist import ProfileStore, simulate_sweep
from repro.compiler.driver import compile_source
from repro.machine import simulator
from repro.workloads.registry import get

WORKLOAD = os.environ.get("REPRO_ANALYTIC_WORKLOAD", "101.tomcatv")
SCALE = float(os.environ.get("REPRO_SCALE", "0.15"))
REPO_ROOT = Path(__file__).resolve().parents[1]
RESULTS_PATH = REPO_ROOT / "BENCH_analytic.json"
ROUNDS = 3

#: Tables 8/9: the associativity sweep crossed with the size sweep,
#: deduplicated — exactly the grid ``repro predict --sweep`` evaluates.
GRID = list(dict.fromkeys(associativity_sweep() + size_sweep()))

_results: dict = {}


def _flush() -> None:
    payload = {
        "machine": {
            "cpu_count": os.cpu_count(),
            "python": platform.python_version(),
        },
        "workload": WORKLOAD,
        "scale": SCALE,
        "results": _results,
    }
    try:
        RESULTS_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    except OSError:
        pass


class _ExecutionTripwire:
    """Fails the analytic phase if a machine execution ever starts."""

    def __init__(self):
        self.armed = False
        self._original = simulator.Machine.run

    def __enter__(self):
        tripwire = self

        def guarded(machine, *args, **kwargs):
            if tripwire.armed:
                raise AssertionError(
                    "machine execution during the analytic phase")
            return tripwire._original(machine, *args, **kwargs)

        simulator.Machine.run = guarded
        return self

    def __exit__(self, *exc):
        simulator.Machine.run = self._original


@pytest.fixture(scope="module")
def program():
    source = get(WORKLOAD).generate("input1", scale=SCALE)
    return compile_source(source)


def test_analytic_grid_speedup(program):
    execute_s = sweep_cold_s = resweep_warm_s = float("inf")
    predict_s = evaluate_s = float("inf")
    profiles = {}

    with _ExecutionTripwire() as tripwire:
        # -- measured path: one execution, then the sweep engine ------
        for _ in range(ROUNDS):
            start = time.perf_counter()
            trace = simulator.Machine(program).run().trace
            execute_s = min(execute_s, time.perf_counter() - start)

            store = ProfileStore()       # fresh: cold pass each round
            start = time.perf_counter()
            simulate_sweep(trace, GRID, store=store)
            sweep_cold_s = min(sweep_cold_s,
                               time.perf_counter() - start)

            start = time.perf_counter()
            simulate_sweep(trace, GRID, store=store)
            resweep_warm_s = min(resweep_warm_s,
                                 time.perf_counter() - start)

        # -- analytic path: no trace, no machine, ever ----------------
        tripwire.armed = True
        for _ in range(ROUNDS):
            start = time.perf_counter()
            profiles = {}
            for config in GRID:
                if config.block_size not in profiles:
                    profiles[config.block_size] = predict_profile(
                        program, block_size=config.block_size)
            predict_s = min(predict_s, time.perf_counter() - start)

            start = time.perf_counter()
            for config in GRID:
                profiles[config.block_size].evaluate(config)
            evaluate_s = min(evaluate_s, time.perf_counter() - start)

    measured_total = execute_s + sweep_cold_s
    analytic_total = predict_s + evaluate_s
    speedup = measured_total / analytic_total
    _results["analytic_engine"] = {
        "configs": len(GRID),
        "machine_executions": 0,         # enforced by the tripwire
        "execute_s": round(execute_s, 4),
        "sweep_cold_s": round(sweep_cold_s, 4),
        "resweep_warm_s": round(resweep_warm_s, 6),
        "analytic_predict_s": round(predict_s, 4),
        "analytic_evaluate_s": round(evaluate_s, 4),
        "analytic_total_s": round(analytic_total, 4),
        "measured_total_s": round(measured_total, 4),
        "speedup_vs_measured": round(speedup, 2),
        "coverage": {str(bs): round(profile.coverage, 4)
                     for bs, profile in sorted(profiles.items())},
    }
    _flush()
    # answering the grid without the execution: measured ~8-15x on the
    # paper workloads; the acceptance gate is >= 5x
    assert speedup >= 5.0
