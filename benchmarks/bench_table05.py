"""Bench: regenerate paper Table 05 (see repro.experiments.table05)."""

from repro.experiments import table05


def test_table05(benchmark, session, record_table):
    table = benchmark.pedantic(
        table05.run, args=(session,), iterations=1, rounds=1)
    record_table(5, table)
    assert table.rows
