"""Bench: regenerate paper Table 13 (see repro.experiments.table13)."""

from repro.experiments import table13


def test_table13(benchmark, session, record_table):
    table = benchmark.pedantic(
        table13.run, args=(session,), iterations=1, rounds=1)
    record_table(13, table)
    assert table.rows
