"""Bench: regenerate paper Table 08 (see repro.experiments.table08)."""

from repro.experiments import table08


def test_table08(benchmark, session, record_table):
    table = benchmark.pedantic(
        table08.run, args=(session,), iterations=1, rounds=1)
    record_table(8, table)
    assert table.rows
