"""Bench: regenerate paper Table 06 (see repro.experiments.table06)."""

from repro.experiments import table06


def test_table06(benchmark, session, record_table):
    table = benchmark.pedantic(
        table06.run, args=(session,), iterations=1, rounds=1)
    record_table(6, table)
    assert table.rows
